package coherence

import (
	"testing"

	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// testSystem builds an n×n machine with unbounded caches and tables
// unless overridden.
func testSystem(t *testing.T, n int, mutate ...func(*Config)) (*sim.Kernel, *System) {
	t.Helper()
	k := sim.NewKernel()
	cfg := Config{N: n, BlockWords: 4}
	for _, m := range mutate {
		m(&cfg)
	}
	s, err := NewSystem(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, s
}

func at(r, c int) topology.Coord { return topology.Coord{Row: r, Col: c} }

// do runs one transaction to completion and drains the machine.
func do(t *testing.T, k *sim.Kernel, start func(done func(Result))) Result {
	t.Helper()
	var res Result
	completed := false
	start(func(r Result) { res = r; completed = true })
	k.Run()
	if !completed {
		t.Fatal("transaction did not complete")
	}
	return res
}

// checkQuiet asserts quiescent invariants.
func checkQuiet(t *testing.T, s *System) {
	t.Helper()
	for _, err := range CheckInvariants(s) {
		t.Errorf("invariant: %v", err)
	}
	if s.StrayReplies() != 0 {
		t.Errorf("stray replies: %d", s.StrayReplies())
	}
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewSystem(k, Config{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := NewSystem(k, Config{N: 4, BlockWords: 1}); err == nil {
		t.Error("1-word blocks accepted")
	}
	s, err := NewSystem(k, Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().BlockWords != 16 {
		t.Errorf("default block size = %d, want 16", s.Config().BlockWords)
	}
	if s.Config().Timing.WordTime != 50 {
		t.Errorf("default word time = %v", s.Config().Timing.WordTime)
	}
}

func TestReadMissUnmodified(t *testing.T) {
	k, s := testSystem(t, 4)
	// Line 2 has home column 2; requester at (0,0) is neither on the home
	// column nor holding anything.
	line := cache.Line(2)
	s.MemoryAt(2).Store().Write(memory.Line(line), []uint64{10, 20, 30, 40})

	nd := s.Node(at(0, 0))
	res := do(t, k, func(done func(Result)) { nd.Read(line, done) })

	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Shared {
		t.Fatalf("line not shared after read: ok=%v", ok)
	}
	if e.Data[1] != 20 {
		t.Errorf("data[1] = %d, want 20", e.Data[1])
	}
	// Row request, column request to memory, column reply, row reply.
	if res.Trace.RowOps != 2 || res.Trace.ColOps != 2 {
		t.Errorf("ops = %d row, %d col; want 2,2", res.Trace.RowOps, res.Trace.ColOps)
	}
	checkQuiet(t, s)
}

func TestReadMissOriginOnHomeColumn(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(1) // home column 1
	nd := s.Node(at(2, 1))
	res := do(t, k, func(done func(Result)) { nd.Read(line, done) })
	// Origin forwards to memory itself and picks the column reply up
	// directly: 1 row + 2 column ops.
	if res.Trace.RowOps != 1 || res.Trace.ColOps != 2 {
		t.Errorf("ops = %d row, %d col; want 1,2", res.Trace.RowOps, res.Trace.ColOps)
	}
	checkQuiet(t, s)
}

func TestReadServedByHomeColumnCache(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	// Prime (0,1) — on line 1's home column — with a shared copy.
	holder := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { holder.Read(line, done) })

	// A read from (0,3), same row as the primed home-column controller:
	// it serves the data from its cache with a single row reply.
	res := do(t, k, func(done func(Result)) { s.Node(at(0, 3)).Read(line, done) })
	if res.Trace.RowOps != 2 || res.Trace.ColOps != 0 {
		t.Errorf("ops = %d row, %d col; want 2,0", res.Trace.RowOps, res.Trace.ColOps)
	}
	checkQuiet(t, s)
}

func TestWriteMissUnmodifiedNoCopies(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(3) // home column 3
	nd := s.Node(at(1, 0))
	do(t, k, func(done func(Result)) { nd.Write(line, done) })

	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Modified {
		t.Fatalf("line not modified after write")
	}
	e.Data[0] = 77 // the processor's store

	// Memory must now be invalid and every MLT in column 0 must know.
	if s.MemoryAt(3).Store().Valid(memory.Line(line)) {
		t.Error("memory still valid after READMOD")
	}
	for r := 0; r < 4; r++ {
		if !s.Node(at(r, 0)).Table().Contains(3) {
			t.Errorf("MLT at (%d,0) missing entry", r)
		}
	}
	checkQuiet(t, s)
}

func TestReadOfModifiedLineRemote(t *testing.T) {
	// Holder and reader in different rows and columns, line's home column
	// a third column: the full five-operation path.
	k, s := testSystem(t, 4)
	line := cache.Line(2) // home column 2
	holder := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[1] = 55

	reader := s.Node(at(3, 3))
	res := do(t, k, func(done func(Result)) { reader.Read(line, done) })

	e, ok := reader.Cache().Lookup(line)
	if !ok || e.State != Shared || e.Data[1] != 55 {
		t.Fatalf("reader state/data wrong: ok=%v", ok)
	}
	he, ok := holder.Cache().Lookup(line)
	if !ok || he.State != Shared {
		t.Fatalf("holder not downgraded to shared")
	}
	// Memory was updated and revalidated.
	mem := s.MemoryAt(2).Store()
	if !mem.Valid(memory.Line(line)) || mem.Peek(memory.Line(line))[1] != 55 {
		t.Error("memory not updated")
	}
	// MLT entries in the holder's column are gone.
	for r := 0; r < 4; r++ {
		if s.Node(at(r, 0)).Table().Contains(2) {
			t.Errorf("stale MLT entry at (%d,0)", r)
		}
	}
	if res.Trace.Ops() == 0 {
		t.Error("no ops traced")
	}
	checkQuiet(t, s)
}

func TestReadOfModifiedLineGeometries(t *testing.T) {
	// Sweep every (holder, reader) pair on a 3×3 grid for one line and
	// check data delivery plus invariants. Covers holder-on-home-column,
	// same-row, same-column and fully-remote routing branches.
	line := cache.Line(1) // home column 1
	for hr := 0; hr < 3; hr++ {
		for hc := 0; hc < 3; hc++ {
			for rr := 0; rr < 3; rr++ {
				for rc := 0; rc < 3; rc++ {
					if hr == rr && hc == rc {
						continue
					}
					k, s := testSystem(t, 3)
					holder := s.Node(at(hr, hc))
					do(t, k, func(done func(Result)) { holder.Write(line, done) })
					holder.CacheEntry(line).Data[2] = 99

					reader := s.Node(at(rr, rc))
					do(t, k, func(done func(Result)) { reader.Read(line, done) })
					e, ok := reader.Cache().Lookup(line)
					if !ok || e.Data[2] != 99 {
						t.Fatalf("holder (%d,%d) reader (%d,%d): data not delivered", hr, hc, rr, rc)
					}
					checkQuiet(t, s)
				}
			}
		}
	}
}

func TestReadModOfModifiedLineGeometries(t *testing.T) {
	line := cache.Line(0) // home column 0
	for hr := 0; hr < 3; hr++ {
		for hc := 0; hc < 3; hc++ {
			for rr := 0; rr < 3; rr++ {
				for rc := 0; rc < 3; rc++ {
					if hr == rr && hc == rc {
						continue
					}
					k, s := testSystem(t, 3)
					holder := s.Node(at(hr, hc))
					do(t, k, func(done func(Result)) { holder.Write(line, done) })
					holder.CacheEntry(line).Data[3] = 42

					writer := s.Node(at(rr, rc))
					do(t, k, func(done func(Result)) { writer.Write(line, done) })
					e, ok := writer.Cache().Lookup(line)
					if !ok || e.State != Modified || e.Data[3] != 42 {
						t.Fatalf("holder (%d,%d) writer (%d,%d): ownership not moved", hr, hc, rr, rc)
					}
					if _, ok := holder.Cache().Lookup(line); ok {
						t.Fatalf("holder (%d,%d) still has a copy", hr, hc)
					}
					// Memory was NOT updated (Section 3: "Note also that
					// main memory is not updated").
					if s.MemoryAt(0).Store().Valid(memory.Line(line)) {
						t.Fatal("memory became valid during ownership transfer")
					}
					checkQuiet(t, s)
				}
			}
		}
	}
}

func TestInvalidationBroadcastPurgesAllSharers(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	s.MemoryAt(2).Store().Write(memory.Line(line), []uint64{1, 2, 3, 4})

	// Spread shared copies across rows and columns.
	sharers := []topology.Coord{at(0, 0), at(1, 3), at(2, 2), at(3, 1)}
	for _, c := range sharers {
		nd := s.Node(c)
		do(t, k, func(done func(Result)) { nd.Read(line, done) })
	}
	// A writer that also held a shared copy upgrades.
	writer := s.Node(at(0, 0))
	res := do(t, k, func(done func(Result)) { writer.Write(line, done) })

	for _, c := range sharers[1:] {
		if _, ok := s.Node(c).Cache().Lookup(line); ok {
			t.Errorf("sharer %v not purged", c)
		}
	}
	e, ok := writer.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[3] != 4 {
		t.Fatal("writer did not obtain modified line with data")
	}
	// The broadcast costs n+1 row ops and 3 column ops (Section 6):
	// 1 request + n purge-carrying row ops, plus request/reply/insert
	// columns.
	if res.Trace.RowOps != 5 || res.Trace.ColOps != 3 {
		t.Errorf("broadcast ops = %d row, %d col; want 5,3", res.Trace.RowOps, res.Trace.ColOps)
	}
	checkQuiet(t, s)
}

func TestReadModNoStaleDataAfterUpgradeRace(t *testing.T) {
	// Two nodes hold the line shared; both upgrade simultaneously. One
	// wins at memory, the loser's request chases the line and wins
	// ownership next; the final holder must be the loser with a single
	// modified copy.
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	s.MemoryAt(1).Store().Write(memory.Line(line), []uint64{7, 7, 7, 7})
	a, b := s.Node(at(0, 0)), s.Node(at(2, 3))
	for _, nd := range []*Node{a, b} {
		nd := nd
		do(t, k, func(done func(Result)) { nd.Read(line, done) })
	}
	doneA, doneB := false, false
	a.Write(line, func(Result) { doneA = true })
	b.Write(line, func(Result) { doneB = true })
	k.Run()
	if !doneA || !doneB {
		t.Fatalf("upgrades incomplete: a=%v b=%v", doneA, doneB)
	}
	mod := 0
	for _, nd := range []*Node{a, b} {
		if e, ok := nd.Cache().Lookup(line); ok && e.State == Modified {
			mod++
			if e.Data[0] != 7 {
				t.Errorf("winner data = %d, want 7", e.Data[0])
			}
		}
	}
	if mod != 1 {
		t.Fatalf("%d modified copies after race", mod)
	}
	checkQuiet(t, s)
}

func TestConcurrentReadAndWriteRace(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(3)
	holder := s.Node(at(1, 1))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[0] = 123

	var got uint64
	reader, writer := s.Node(at(0, 2)), s.Node(at(3, 0))
	readerDone, writerDone := false, false
	reader.Read(line, func(Result) {
		readerDone = true
		got = reader.CacheEntry(line).Data[0]
	})
	writer.Write(line, func(Result) {
		writerDone = true
		writer.CacheEntry(line).Data[0] = 456
	})
	k.Run()
	if !readerDone || !writerDone {
		t.Fatalf("race incomplete: read=%v write=%v", readerDone, writerDone)
	}
	if got != 123 && got != 456 {
		t.Errorf("reader saw %d, want 123 or 456", got)
	}
	checkQuiet(t, s)
}

func TestVictimWritebackOnCapacityMiss(t *testing.T) {
	// A 1-set, 2-way cache: a third line forces a modified victim out.
	k, s := testSystem(t, 4, func(c *Config) {
		c.CacheLines = 2
		c.CacheAssoc = 2
	})
	nd := s.Node(at(0, 0))
	l1, l2, l3 := cache.Line(0), cache.Line(1), cache.Line(2)
	do(t, k, func(done func(Result)) { nd.Write(l1, done) })
	nd.CacheEntry(l1).Data[0] = 11
	do(t, k, func(done func(Result)) { nd.Write(l2, done) })
	do(t, k, func(done func(Result)) { nd.Read(l3, done) })

	// l1 was LRU and modified: it must have been written back.
	mem := s.MemoryAt(0).Store()
	if !mem.Valid(memory.Line(l1)) || mem.Peek(memory.Line(l1))[0] != 11 {
		t.Error("victim not written back to memory")
	}
	if _, ok := nd.Cache().Lookup(l1); ok {
		t.Error("victim still resident")
	}
	checkQuiet(t, s)
}

func TestExplicitWriteBack(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	nd := s.Node(at(1, 0))
	do(t, k, func(done func(Result)) { nd.Write(line, done) })
	nd.CacheEntry(line).Data[2] = 9

	do(t, k, func(done func(Result)) { nd.WriteBack(line, done) })
	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Shared {
		t.Fatal("line not shared after writeback")
	}
	mem := s.MemoryAt(2).Store()
	if !mem.Valid(memory.Line(line)) || mem.Peek(memory.Line(line))[2] != 9 {
		t.Error("memory not updated by writeback")
	}
	// Writing back an unmodified line completes immediately.
	do(t, k, func(done func(Result)) { nd.WriteBack(line, done) })
	checkQuiet(t, s)
}

func TestMLTOverflowForcesWriteback(t *testing.T) {
	// MLT holds 2 entries; writing 3 lines from the same column (all
	// mapping to distinct lines) must push one line back to unmodified.
	k, s := testSystem(t, 4, func(c *Config) {
		c.MLTEntries = 2
		c.MLTAssoc = 1 // direct-mapped: lines 0 and 2 collide in set 0
	})
	nd := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { nd.Write(cache.Line(0), done) })
	nd.CacheEntry(0).Data[0] = 5
	do(t, k, func(done func(Result)) { nd.Write(cache.Line(2), done) })

	// Line 0's entry overflowed: its data must be back in memory and the
	// cache copy downgraded to shared.
	e, ok := nd.Cache().Lookup(0)
	if !ok || e.State != Shared {
		t.Fatalf("overflow line not shared: ok=%v", ok)
	}
	mem := s.MemoryAt(0).Store()
	if !mem.Valid(0) || mem.Peek(0)[0] != 5 {
		t.Error("overflow line not written back")
	}
	checkQuiet(t, s)
}

func TestAllocateReturnsAckNotData(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	s.MemoryAt(1).Store().Write(memory.Line(line), []uint64{9, 9, 9, 9})
	nd := s.Node(at(2, 2))
	do(t, k, func(done func(Result)) { nd.Allocate(line, done) })

	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Modified {
		t.Fatal("allocate did not obtain modified line")
	}
	for i, w := range e.Data {
		if w != 0 {
			t.Errorf("allocate delivered old data word %d = %d", i, w)
		}
	}
	if s.MemoryAt(1).Store().Valid(memory.Line(line)) {
		t.Error("memory still valid after allocate")
	}
	checkQuiet(t, s)
}

func TestAllocateOfModifiedLine(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	holder := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[0] = 31

	alloc := s.Node(at(3, 3))
	do(t, k, func(done func(Result)) { alloc.Allocate(line, done) })
	e, ok := alloc.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[0] != 0 {
		t.Fatal("allocate from modified holder failed")
	}
	if _, ok := holder.Cache().Lookup(line); ok {
		t.Error("old holder kept a copy")
	}
	checkQuiet(t, s)
}

func TestSnarfRefreshesRetainedTag(t *testing.T) {
	k, s := testSystem(t, 4, func(c *Config) { c.Snarf = true })
	line := cache.Line(2)
	s.MemoryAt(2).Store().Write(memory.Line(line), []uint64{4, 4, 4, 4})

	// bystander once held the line, then lost it to an invalidation.
	bystander := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { bystander.Read(line, done) })
	writer := s.Node(at(2, 2))
	do(t, k, func(done func(Result)) { writer.Write(line, done) })
	writer.CacheEntry(line).Data[0] = 8
	if _, ok := bystander.Cache().Lookup(line); ok {
		t.Fatal("bystander not invalidated")
	}

	// A read by the bystander's row neighbour moves the line across row 0;
	// the bystander snarfs it in shared mode.
	reader := s.Node(at(0, 3))
	do(t, k, func(done func(Result)) { reader.Read(line, done) })
	e, ok := bystander.Cache().Lookup(line)
	if !ok || e.State != Shared || e.Data[0] != 8 {
		t.Fatalf("bystander did not snarf: ok=%v", ok)
	}
	if bystander.Cache().Stats().Snarfs != 1 {
		t.Errorf("snarfs = %d, want 1", bystander.Cache().Stats().Snarfs)
	}
	checkQuiet(t, s)
}

func TestMemoryReissueOnInvalidLine(t *testing.T) {
	// Force the robustness path: a request routed to memory for an
	// invalid line is retransmitted as a request for modified data.
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	holder := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[0] = 66

	// Manually wipe the MLT entries in column 0 to simulate the
	// inconsistent window ("a controller can, on occasion, simply discard
	// such requests").
	for r := 0; r < 4; r++ {
		s.Node(at(r, 0)).Table().Remove(1)
	}
	reader := s.Node(at(2, 2))
	doneCh := false
	reader.Read(line, func(Result) { doneCh = true })
	// Restore the entries while the request is in flight so the reissued
	// request can find the line.
	k.After(100, func() {
		for r := 0; r < 4; r++ {
			s.Node(at(r, 0)).Table().Insert(1)
		}
	})
	k.Run()
	if !doneCh {
		t.Fatal("read never completed through the reissue path")
	}
	if s.MemoryAt(1).Store().Stats().Reissues == 0 {
		t.Error("memory never reissued")
	}
	e, ok := reader.Cache().Lookup(line)
	if !ok || e.Data[0] != 66 {
		t.Error("reissued read returned wrong data")
	}
	checkQuiet(t, s)
}
