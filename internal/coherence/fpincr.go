package coherence

import (
	"sync/atomic"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
)

// This file is the incremental companion of snapshot.go: FPCache computes
// the same canonical-equivalence fingerprint as System.Fingerprint but in
// O(changed components + n! × n² combine) per choice point instead of
// O(n! × total machine state).
//
// The machine is hashed as independent components — one hash per node
// (L2 + MLT + pending transaction), one per memory module, one snapshot
// per bus — each cached behind a mutation generation counter (Node.gen,
// Memory.gen, Bus.Gen) that the protocol entry points bump. A choice
// point calls BeginPoint once to refresh only the dirty components, then
// FP(perm, inv) once per row relabeling to combine the cached hashes in
// permuted order.
//
// Component hashes are row-independent by construction: nothing inside a
// node, memory module, or row-bus queue names a row index. The
// row-coupled parts — operation Origin/Target rows, the snarf
// eligibility matrix, column-bus source identities, event issuer rows —
// are factored out of the cached hashes and folded in per permutation
// during the combine.
//
// The hash VALUES differ from System.Fingerprint (word-level FNV-1a over
// component hashes instead of one byte-level walk), but the induced
// equivalence partition is identical: both encodings are injective on
// exactly the same set of protocol-visible fields, and the explorer
// depends only on fingerprint equality. mc's cross-check mode
// (Options.CheckFP) and the equivalence tests in this package and in
// internal/mc verify both properties.

// evKind discriminates the pending-event records BeginPoint snapshots.
type evKind uint8

const (
	evEnqueue evKind = iota
	evGrant
	evDeliver
	evExtra
	evOpaque
)

// evRec is one pending kernel event with its row-permutation-dependent
// parts (issuer row, op, bus identity) kept symbolic.
type evRec struct {
	kind     evKind
	row, col int
	dim      uint8
	busKind  uint64
	busIdx   int
	op       *Op
	rest     uint64
}

// busQ is a snapshot of one bus's fingerprint-visible state, refreshed
// when the bus's generation counter moves. Op pointers stay valid and
// immutable in their hashed fields for the life of the run.
type busQ struct {
	gen      uint64
	valid    bool
	busy     bool
	inflight *Op
	perSrc   [][]*Op // queued ops grouped by physical attach index
	nonEmpty int
}

// ExtraTagFunc lets the model-check driver describe its own kernel event
// tags: row and col are the issuer's physical coordinates (permuted
// during the combine) and rest hashes the placement-independent
// remainder.
type ExtraTagFunc func(tag any) (row, col int, rest uint64, ok bool)

// FPCache incrementally fingerprints one System. It is not safe for
// concurrent use; each explorer worker owns one (pooled across runs).
type FPCache struct {
	sys   *System
	n     int
	snarf bool

	nodeH   [][]uint64
	nodeGen [][]uint64
	memH    []uint64
	memGen  []uint64
	rowQ    []busQ
	colQ    []busQ

	evs []evRec
	evH []uint64

	// cp identifies the current choice point, keying the per-point snarf
	// memo on ops. Drawn from a process-global sequence so memos written
	// by one FPCache (e.g. the live one) are never mistaken for current
	// by another (e.g. a cross-check's fresh cache) over the same ops.
	cp uint64

	// cIdent is the cached identity column permutation for FP; colIdent
	// records whether the current FPRC call's cperm is the identity (the
	// packed snarf fast path).
	cIdent   []int
	colIdent bool

	recomputes uint64 // component hashes rebuilt because their gen moved
	reused     uint64 // component hashes served from cache
}

// NewFPCache returns a cache bound to s with every component dirty.
func NewFPCache(s *System) *FPCache {
	f := &FPCache{}
	f.Reset(s)
	return f
}

// Reset rebinds the cache to s (possibly a fresh machine from a pooled
// run) and marks every component dirty. Buffers are reused when the grid
// size matches. Counters for Stats are zeroed; cp stays monotonic.
func (f *FPCache) Reset(s *System) {
	n := s.cfg.N
	f.sys = s
	f.snarf = s.cfg.Snarf
	f.recomputes, f.reused = 0, 0
	if f.n != n {
		f.n = n
		f.nodeH = make([][]uint64, n)
		f.nodeGen = make([][]uint64, n)
		for r := 0; r < n; r++ {
			f.nodeH[r] = make([]uint64, n)
			f.nodeGen[r] = make([]uint64, n)
		}
		f.memH = make([]uint64, n)
		f.memGen = make([]uint64, n)
		f.rowQ = make([]busQ, n)
		f.colQ = make([]busQ, n)
	}
	const dirty = ^uint64(0)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			f.nodeGen[r][c] = dirty
		}
		f.memGen[r] = dirty
		f.rowQ[r].valid = false
		f.colQ[r].valid = false
	}
	f.evs = f.evs[:0]
}

// Stats reports how many component hashes were rebuilt vs served from
// cache since the last Reset.
func (f *FPCache) Stats() (recomputes, reused uint64) { return f.recomputes, f.reused }

// BeginPoint refreshes every dirty component and snapshots the pending
// event set; call it once per choice point, before FP. extra describes
// driver-owned event tags (may be nil).
// fpPointSeq issues process-globally unique choice-point identities; ops
// memoize their snarf matrix against one.
var fpPointSeq atomic.Uint64

func (f *FPCache) BeginPoint(extra ExtraTagFunc) {
	f.cp = fpPointSeq.Add(1)
	s := f.sys
	n := f.n
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nd := s.nodes[r][c]
			if nd.gen != f.nodeGen[r][c] {
				f.nodeH[r][c] = nodeHash(nd)
				f.nodeGen[r][c] = nd.gen
				f.recomputes++
			} else {
				f.reused++
			}
		}
	}
	for c := 0; c < n; c++ {
		m := s.mems[c]
		if m.gen != f.memGen[c] {
			f.memH[c] = memHash(m)
			f.memGen[c] = m.gen
			f.recomputes++
		} else {
			f.reused++
		}
	}
	for r := 0; r < n; r++ {
		f.refreshBus(&f.rowQ[r], s.rows[r])
	}
	for c := 0; c < n; c++ {
		f.refreshBus(&f.colQ[c], s.cols[c])
	}
	f.snapshotEvents(extra)
}

func (f *FPCache) refreshBus(q *busQ, b *bus.Bus) {
	if q.valid && q.gen == b.Gen() {
		f.reused++
		return
	}
	f.recomputes++
	q.valid = true
	q.gen = b.Gen()
	q.busy = b.Busy()
	q.inflight = nil
	if p := b.Inflight(); p != nil {
		q.inflight = p.(*Op)
	}
	if len(q.perSrc) < b.Agents() {
		q.perSrc = make([][]*Op, b.Agents())
	}
	for i := range q.perSrc {
		q.perSrc[i] = q.perSrc[i][:0]
	}
	q.nonEmpty = 0
	b.ForEachQueued(func(src int, pkt bus.Packet) {
		if len(q.perSrc[src]) == 0 {
			q.nonEmpty++
		}
		q.perSrc[src] = append(q.perSrc[src], pkt.(*Op))
	})
}

func (f *FPCache) snapshotEvents(extra ExtraTagFunc) {
	f.evs = f.evs[:0]
	f.sys.k.ForEachPendingTag(func(tag any) {
		var e evRec
		switch t := tag.(type) {
		case EnqueueTag:
			e.kind = evEnqueue
			e.row, e.col = t.Issuer.Row, t.Issuer.Col
			e.dim = uint8(t.Dim)
			e.busKind, e.busIdx = f.busRef(t.bus)
			e.op = t.Op
		case bus.GrantTag:
			e.kind = evGrant
			e.busKind, e.busIdx = f.busRef(t.B)
		case bus.DeliverTag:
			e.kind = evDeliver
			e.busKind, e.busIdx = f.busRef(t.B)
			e.op = t.Pkt.(*Op)
		default:
			e.kind = evOpaque
			if extra != nil {
				if row, col, rest, ok := extra(tag); ok {
					e.kind = evExtra
					e.row, e.col, e.rest = row, col, rest
				}
			}
		}
		f.evs = append(f.evs, e)
	})
}

// busRef resolves a bus to (kind, physical index) mirroring
// Fingerprint's busID: rows are kind 0 (index permuted at combine time),
// columns kind 1, anything else kind 2.
func (f *FPCache) busRef(b *bus.Bus) (uint64, int) {
	s := f.sys
	for r := 0; r < f.n; r++ {
		if s.rows[r] == b {
			return 0, r
		}
	}
	for c := 0; c < f.n; c++ {
		if s.cols[c] == b {
			return 1, c
		}
	}
	return 2, 0
}

// FP combines the cached component hashes under the row relabeling perm
// (inv its inverse, both caller-owned and len n) with columns kept in
// physical order. BeginPoint must have run at this choice point.
func (f *FPCache) FP(perm, inv []int) uint64 {
	return f.FPRC(perm, inv, f.identCols(), f.identCols())
}

// identCols returns the cached identity column permutation.
func (f *FPCache) identCols() []int {
	if len(f.cIdent) != f.n {
		f.cIdent = make([]int, f.n)
		for i := range f.cIdent {
			f.cIdent[i] = i
		}
	}
	return f.cIdent
}

// FPRC combines the cached component hashes under the row relabeling
// perm AND the column relabeling cperm (inv/cinv their inverses, all
// caller-owned and len n). Column relabelings are sound only when cperm
// fixes the home column of every line the run can touch — the caller
// (internal/mc's shared permutation set) enforces that; this function
// just applies whatever relabeling it is handed. The encoding is
// prefix-decodable given the machine configuration — fixed-position
// component words, count-prefixed variable sections — so it is
// injective on the same abstract content as System.Fingerprint.
func (f *FPCache) FPRC(perm, inv, cperm, cinv []int) uint64 {
	n := f.n
	f.colIdent = true
	for i, v := range cperm {
		if v != i {
			f.colIdent = false
			break
		}
	}
	h := fnvOffset
	for cr := 0; cr < n; cr++ {
		r := inv[cr]
		for cc := 0; cc < n; cc++ {
			h.u64(f.nodeH[r][cinv[cc]])
		}
	}
	for cc := 0; cc < n; cc++ {
		h.u64(f.memH[cinv[cc]])
	}
	for cr := 0; cr < n; cr++ {
		f.busFP(&h, &f.rowQ[inv[cr]], false, perm, inv, cperm, cinv)
	}
	for cc := 0; cc < n; cc++ {
		f.busFP(&h, &f.colQ[cinv[cc]], true, perm, inv, cperm, cinv)
	}
	if cap(f.evH) < len(f.evs) {
		f.evH = make([]uint64, 0, len(f.evs)*2)
	}
	evH := f.evH[:0]
	for i := range f.evs {
		v := f.evHash(&f.evs[i], perm, inv, cperm, cinv)
		// Insertion sort on the way in: the event multiset must hash
		// order-insensitively (heap order varies across replays of the
		// same abstract state).
		j := len(evH)
		evH = append(evH, v)
		for j > 0 && evH[j-1] > v {
			evH[j] = evH[j-1]
			j--
		}
		evH[j] = v
	}
	f.evH = evH
	h.u64(uint64(len(evH)))
	for _, v := range evH {
		h.u64(v)
	}
	return uint64(h)
}

func (f *FPCache) busFP(h *fnv, q *busQ, colBus bool, perm, inv, cperm, cinv []int) {
	h.bit(q.busy)
	h.bit(q.inflight != nil)
	if q.inflight != nil {
		h.u64(f.opPermFP(q.inflight, perm, inv, cperm, cinv))
	}
	h.u64(uint64(q.nonEmpty))
	emit := func(canonSrc int, ops []*Op) {
		if len(ops) == 0 {
			return
		}
		h.u64(uint64(int64(canonSrc)))
		h.u64(uint64(len(ops)))
		for _, op := range ops {
			h.u64(f.opPermFP(op, perm, inv, cperm, cinv))
		}
	}
	if !colBus {
		// Row-bus sources are column indices, visited in canonical
		// column order.
		for cc := 0; cc < f.n; cc++ {
			if src := cinv[cc]; src < len(q.perSrc) {
				emit(cc, q.perSrc[src])
			}
		}
		return
	}
	// Column-bus sources are row indices (attach index r holds node
	// (r, c)), visited in canonical row order; the memory module attaches
	// last, at index n, and maps to itself.
	for cr := 0; cr < f.n; cr++ {
		if src := inv[cr]; src < len(q.perSrc) {
			emit(cr, q.perSrc[src])
		}
	}
	if len(q.perSrc) > f.n {
		emit(f.n, q.perSrc[f.n])
	}
}

func (f *FPCache) evHash(e *evRec, perm, inv, cperm, cinv []int) uint64 {
	h := fnvOffset
	switch e.kind {
	case evEnqueue:
		h.u64(0x10)
		h.u64(permRowWord(perm, e.row))
		h.u64(permRowWord(cperm, e.col))
		h.u64(uint64(e.dim))
		h.u64(e.busKind)
		h.u64(f.busCanon(e.busKind, e.busIdx, perm, cperm))
		h.u64(f.opPermFP(e.op, perm, inv, cperm, cinv))
	case evGrant:
		h.u64(0x11)
		h.u64(e.busKind)
		h.u64(f.busCanon(e.busKind, e.busIdx, perm, cperm))
	case evDeliver:
		h.u64(0x12)
		h.u64(e.busKind)
		h.u64(f.busCanon(e.busKind, e.busIdx, perm, cperm))
		h.u64(f.opPermFP(e.op, perm, inv, cperm, cinv))
	case evExtra:
		h.u64(0x13)
		h.u64(permRowWord(perm, e.row))
		h.u64(permRowWord(cperm, e.col))
		h.u64(e.rest)
	default:
		h.u64(0x1f)
	}
	return uint64(h)
}

func (f *FPCache) busCanon(kind uint64, idx int, perm, cperm []int) uint64 {
	switch kind {
	case 0:
		return uint64(perm[idx])
	case 1:
		return uint64(cperm[idx])
	}
	return 0
}

// permRowWord canonicalizes one coordinate index under perm; negative
// indices (a memory module's row, an absent coordinate) pass through.
// It serves rows and columns alike — both are plain index relabelings.
func permRowWord(perm []int, r int) uint64 {
	if r < 0 {
		return uint64(int64(r))
	}
	return uint64(perm[r])
}

// opPermFP hashes one bus operation under (perm, cperm): the memoized
// placement-independent base plus the permuted Origin/Target coordinates
// and, when snarfing is live, the permuted snarf eligibility matrix.
func (f *FPCache) opPermFP(op *Op, perm, inv, cperm, cinv []int) uint64 {
	if !op.fpBaseOK {
		op.fpBase = opBaseFP(op)
		op.fpBaseOK = true
	}
	h := fnvOffset
	h.u64(op.fpBase)
	h.u64(permRowWord(perm, op.Origin.Row))
	h.u64(permRowWord(cperm, op.Origin.Col))
	if op.Flags&XFER != 0 {
		h.u64(permRowWord(perm, op.Target.Row))
		h.u64(permRowWord(cperm, op.Target.Col))
	}
	if f.snarf && op.Txn == READ && op.Data != nil {
		h.u64(f.snarfWord(op, inv, cinv))
	}
	return uint64(h)
}

// opBaseFP hashes the placement-independent fields of an op. Every
// hashed field is immutable once the op is fingerprint-visible
// (snapshot.go hashes the same set), so callers memoize the result on
// the op.
func opBaseFP(op *Op) uint64 {
	h := fnvOffset
	h.byte(byte(op.Txn))
	h.u64(uint64(op.Flags))
	h.u64(uint64(op.Line))
	h.bit(op.Data != nil)
	h.u64(uint64(len(op.Data)))
	for _, w := range op.Data {
		h.u64(w)
	}
	return uint64(h)
}

// snarfWord folds the born-vs-purgedAt eligibility relation (one bit per
// node, in canonical node order) into a single word. The physical bit
// matrix is memoized on the op per choice point; each permutation only
// reorders the packed rows (and, under a column relabeling, the bits
// within each row). Grids wider than 8 overflow the packing and hash the
// bits directly.
func (f *FPCache) snarfWord(op *Op, inv, cinv []int) uint64 {
	n := f.n
	if n > 8 {
		h := fnvOffset
		for cr := 0; cr < n; cr++ {
			for cc := 0; cc < n; cc++ {
				t, ok := f.sys.nodes[inv[cr]][cinv[cc]].purgedAt[op.Line]
				h.bit(ok && op.born <= t)
			}
		}
		return uint64(h)
	}
	if op.fpSnarfCP != f.cp {
		var bits uint64
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if t, ok := f.sys.nodes[r][c].purgedAt[op.Line]; ok && op.born <= t {
					bits |= 1 << uint(r*n+c)
				}
			}
		}
		op.fpSnarfBits = bits
		op.fpSnarfCP = f.cp
	}
	mask := uint64(1)<<uint(n) - 1
	var out uint64
	if f.colIdent {
		for cr := 0; cr < n; cr++ {
			out |= ((op.fpSnarfBits >> uint(inv[cr]*n)) & mask) << uint(cr*n)
		}
		return out
	}
	for cr := 0; cr < n; cr++ {
		rowBits := (op.fpSnarfBits >> uint(inv[cr]*n)) & mask
		var p uint64
		for cc := 0; cc < n; cc++ {
			p |= ((rowBits >> uint(cinv[cc])) & 1) << uint(cc)
		}
		out |= p << uint(cr*n)
	}
	return out
}

// nodeHash hashes one node's L2, MLT, pending transaction, and
// write-back continuation — the same fields snapshot.go walks, none of
// which name a row index.
func nodeHash(nd *Node) uint64 {
	h := fnvOffset
	h.u64(0x01)
	sub := fnvOffset
	count := 0
	nd.l2.ForEach(func(e *cache.Entry) {
		count++
		sub.u64(uint64(e.Line))
		sub.byte(byte(e.State))
		sub.bit(e.Pinned)
		for _, w := range e.Data {
			sub.u64(w)
		}
	})
	h.u64(uint64(count))
	h.u64(uint64(sub))
	h.u64(0x02)
	lines := nd.table.Lines()
	h.u64(uint64(len(lines)))
	for _, l := range lines {
		h.u64(uint64(l))
	}
	h.u64(0x03)
	h.bit(nd.pend != nil)
	if p := nd.pend; p != nil {
		h.byte(byte(p.txn))
		h.u64(uint64(p.flags))
		h.u64(uint64(p.line))
		h.bit(p.poisoned)
		h.bit(p.queued)
	}
	h.bit(nd.wbCont != nil)
	return uint64(h)
}

// memHash hashes one memory module's contents and valid bits.
func memHash(m *Memory) uint64 {
	h := fnvOffset
	h.u64(0x04)
	sub := fnvOffset
	count := 0
	m.store.ForEach(func(line memory.Line, valid bool, data []uint64) {
		count++
		sub.u64(uint64(line))
		sub.bit(valid)
		for _, w := range data {
			sub.u64(w)
		}
	})
	h.u64(uint64(count))
	h.u64(uint64(sub))
	return uint64(h)
}
