package coherence

import (
	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// This file computes canonical fingerprints of a machine's complete
// protocol state for the model checker's visited-state table. Two states
// with equal fingerprints are (modulo hash collision) behaviorally
// identical: every component that can influence future protocol behavior
// is hashed, and everything that cannot — statistics, transaction traces,
// absolute times — is excluded.
//
// Row symmetry: the protocol treats rows interchangeably (home columns
// are a function of the line address alone), so the fingerprint accepts a
// row relabeling and the checker takes the minimum over all of them.
// Columns are symmetric only conditionally — the home-column interleaving
// pins each line to a specific column bus — so FingerprintRC additionally
// accepts a column relabeling, sound exactly when it fixes the home
// column of every line the run can touch (the caller's obligation;
// internal/mc derives the admissible set from the scenario).

// fnv is an incremental FNV-1a 64 hasher.
type fnv uint64

const fnvOffset fnv = 14695981039346656037
const fnvPrime fnv = 1099511628211

func (h *fnv) byte(b byte) {
	*h = (*h ^ fnv(b)) * fnvPrime
}

func (h *fnv) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv) bit(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// Fingerprint hashes the complete protocol-visible machine state under
// the given row relabeling: caches, modified line tables, pending
// processor transactions, memory contents and valid bits, bus queues and
// in-flight operations, and pending kernel events.
//
// perm maps physical row index to canonical row index; nil means
// identity. extraTag, when non-nil, is consulted for kernel event tags
// the coherence layer does not recognize (the model-check driver's own
// events); it returns a stable hash contribution and true, or false to
// hash the tag as an opaque unknown.
//
// Bus queues are hashed as per-source subsequences (sorted by canonical
// source) rather than as a single interleaved sequence: with deferred
// grants, arbitration order among distinct sources is a choice the
// explorer already branches on, while per-source FIFO order is fixed by
// the hardware.
func (s *System) Fingerprint(perm []int, extraTag func(tag any) (uint64, bool)) uint64 {
	return s.FingerprintRC(perm, nil, extraTag)
}

// FingerprintRC is Fingerprint under a simultaneous row relabeling perm
// and column relabeling cperm (nil means identity for either). The
// column relabeling permutes node columns, memory modules, column-bus
// identities, row-bus source indices, and every hashed column
// coordinate. It is the caller's obligation that cperm fixes the home
// column of every line reachable in the run; FingerprintRC applies
// whatever relabeling it is handed.
func (s *System) FingerprintRC(perm, cperm []int, extraTag func(tag any) (uint64, bool)) uint64 {
	n := s.cfg.N
	if perm == nil || cperm == nil {
		if len(s.fpIdent) != n {
			s.fpIdent = make([]int, n)
			for i := range s.fpIdent {
				s.fpIdent[i] = i
			}
		}
		if perm == nil {
			perm = s.fpIdent
		}
		if cperm == nil {
			cperm = s.fpIdent
		}
	}
	if len(s.fpInv) != n {
		s.fpInv = make([]int, n)
	}
	inv := s.fpInv
	for phys, canon := range perm {
		inv[canon] = phys
	}
	if len(s.fpCInv) != n {
		s.fpCInv = make([]int, n)
	}
	cinv := s.fpCInv
	for phys, canon := range cperm {
		cinv[canon] = phys
	}

	h := fnvOffset

	permRow := func(r int) int {
		if r < 0 {
			return r
		}
		return perm[r]
	}
	permCol := func(c int) int {
		if c < 0 {
			return c
		}
		return cperm[c]
	}

	hashCoord := func(c topology.Coord) {
		h.u64(uint64(int64(permRow(c.Row))))
		h.u64(uint64(int64(permCol(c.Col))))
	}

	// opFP hashes one bus operation's protocol-visible fields. Transient
	// probe-phase fields (modified/claimed/suppressed/...), the trace
	// pointer, occupancy (a pure function of data presence) and the
	// absolute birth time are excluded. When snarfing is enabled, the
	// relation born <= purgedAt[line] per node IS protocol-visible (it
	// gates the snarf), so it is folded in as one bit per node even
	// though both absolute times are excluded.
	hashOp := func(op *Op) {
		h.byte(byte(op.Txn))
		h.u64(uint64(op.Flags))
		h.u64(uint64(op.Line))
		hashCoord(op.Origin)
		if op.Flags&XFER != 0 {
			// Target is meaningful only for SYNC handoffs; on every
			// other op it is the zero coordinate, and permuting that
			// zero would break row-relabeling invariance of in-flight
			// states. XFER ops are already segregated by Flags above.
			hashCoord(op.Target)
		}
		h.bit(op.Data != nil)
		for _, w := range op.Data {
			h.u64(w)
		}
		if s.cfg.Snarf && op.Txn == READ && op.Data != nil {
			for cr := 0; cr < n; cr++ {
				for cc := 0; cc < n; cc++ {
					nd := s.nodes[inv[cr]][cinv[cc]]
					t, ok := nd.purgedAt[op.Line]
					h.bit(ok && op.born <= t)
				}
			}
		}
	}

	// Nodes, in canonical (row, col) order.
	for cr := 0; cr < n; cr++ {
		for cc := 0; cc < n; cc++ {
			nd := s.nodes[inv[cr]][cinv[cc]]
			h.byte(0x01)
			nd.l2.ForEach(func(e *cache.Entry) {
				h.u64(uint64(e.Line))
				h.byte(byte(e.State))
				h.bit(e.Pinned)
				for _, w := range e.Data {
					h.u64(w)
				}
			})
			h.byte(0x02)
			for _, l := range nd.table.Lines() { // already sorted
				h.u64(uint64(l))
			}
			h.byte(0x03)
			h.bit(nd.pend != nil)
			if p := nd.pend; p != nil {
				h.byte(byte(p.txn))
				h.u64(uint64(p.flags))
				h.u64(uint64(p.line))
				h.bit(p.poisoned)
				h.bit(p.queued)
			}
			h.bit(nd.wbCont != nil)
		}
	}

	// Memory modules, in canonical column order.
	for cc := 0; cc < n; cc++ {
		h.byte(0x04)
		s.mems[cinv[cc]].store.ForEach(func(line memory.Line, valid bool, data []uint64) {
			h.u64(uint64(line))
			h.bit(valid)
			for _, w := range data {
				h.u64(w)
			}
		})
	}

	// Buses. Both families are visited in canonical order; sources on a
	// row bus are column indices (relabeled by cperm), sources on a
	// column bus are row indices (relabeled by perm) with the memory
	// module's index mapping to itself.
	busID := func(b *bus.Bus) (uint64, uint64) {
		for r := 0; r < n; r++ {
			if s.rows[r] == b {
				return 0, uint64(perm[r])
			}
		}
		for c := 0; c < n; c++ {
			if s.cols[c] == b {
				return 1, uint64(cperm[c])
			}
		}
		return 2, 0
	}

	hashBus := func(b *bus.Bus, permSrc func(int) int) {
		h.bit(b.Busy())
		if p := b.Inflight(); p != nil {
			hashOp(p.(*Op))
		}
		type group struct {
			src int
			ops []*Op
		}
		var groups []group
		idx := make(map[int]int)
		b.ForEachQueued(func(src int, pkt bus.Packet) {
			cs := permSrc(src)
			gi, ok := idx[cs]
			if !ok {
				gi = len(groups)
				idx[cs] = gi
				groups = append(groups, group{src: cs})
			}
			groups[gi].ops = append(groups[gi].ops, pkt.(*Op))
		})
		// Selection sort by canonical source: group counts are tiny.
		for i := range groups {
			min := i
			for j := i + 1; j < len(groups); j++ {
				if groups[j].src < groups[min].src {
					min = j
				}
			}
			groups[i], groups[min] = groups[min], groups[i]
		}
		for _, g := range groups {
			h.u64(uint64(int64(g.src)))
			h.u64(uint64(len(g.ops)))
			for _, op := range g.ops {
				hashOp(op)
			}
		}
	}

	rowSrc := func(src int) int { return cperm[src] } // sources are column indices
	for cr := 0; cr < n; cr++ {
		h.byte(0x05)
		hashBus(s.rows[inv[cr]], rowSrc)
	}
	colSrc := func(src int) int {
		if src < n {
			return perm[src] // node sources are row indices
		}
		return src // the memory module
	}
	for cc := 0; cc < n; cc++ {
		h.byte(0x06)
		hashBus(s.cols[cinv[cc]], colSrc)
	}

	// Pending kernel events, as a multiset (absolute times excluded: in
	// the checker's untimed interpretation only the set of enabled
	// events matters).
	var evs []uint64
	s.k.ForEachPending(func(at sim.Time, tag any) {
		var eh fnv = fnvOffset
		switch t := tag.(type) {
		case EnqueueTag:
			eh.byte(0x10)
			eh.u64(uint64(int64(permRow(t.Issuer.Row))))
			eh.u64(uint64(int64(permCol(t.Issuer.Col))))
			eh.byte(byte(t.Dim))
			kind, id := busID(t.bus)
			eh.u64(kind)
			eh.u64(id)
			sub := h
			h = fnvOffset
			hashOp(t.Op)
			eh.u64(uint64(h))
			h = sub
		case bus.GrantTag:
			eh.byte(0x11)
			kind, id := busID(t.B)
			eh.u64(kind)
			eh.u64(id)
		case bus.DeliverTag:
			eh.byte(0x12)
			kind, id := busID(t.B)
			eh.u64(kind)
			eh.u64(id)
			sub := h
			h = fnvOffset
			hashOp(t.Pkt.(*Op))
			eh.u64(uint64(h))
			h = sub
		default:
			if extraTag != nil {
				if fp, ok := extraTag(tag); ok {
					eh.byte(0x13)
					eh.u64(fp)
					break
				}
			}
			eh.byte(0x1f) // opaque: untagged or unrecognized event
		}
		evs = append(evs, uint64(eh))
	})
	for i := range evs {
		min := i
		for j := i + 1; j < len(evs); j++ {
			if evs[j] < evs[min] {
				min = j
			}
		}
		evs[i], evs[min] = evs[min], evs[i]
	}
	h.byte(0x07)
	for _, e := range evs {
		h.u64(e)
	}

	return uint64(h)
}

// --- event-tag classification for partial-order reduction ----------------

// TagKind classifies a kernel event tag for the model checker's
// independence reasoning (internal/mc's persistent/sleep-set reduction).
type TagKind uint8

const (
	// TagOther is any tag the coherence layer does not recognize; the
	// checker must treat it as dependent with everything.
	TagOther TagKind = iota
	// TagEnqueue is a device-latency enqueue (EnqueueTag).
	TagEnqueue
	// TagGrant is a deferred bus arbitration (bus.GrantTag).
	TagGrant
	// TagDeliver is a bus delivery (bus.DeliverTag).
	TagDeliver
)

// TagInfo describes one kernel event tag to the model checker: its
// class, the identity of the bus it acts on, the issuing agent (enqueues
// only), and a content fingerprint stable across replays of the same
// state, usable as the transition's identity in sleep sets.
type TagInfo struct {
	Kind TagKind
	// Bus identifies the bus machine-stably: row r is r, column c is
	// N+c; -1 when the tag names no bus this system owns.
	Bus int
	// Issuer is the enqueueing agent (Row -1 for a memory module);
	// meaningful only for TagEnqueue.
	Issuer topology.Coord
	// FP is a content hash of the transition (class, bus, payload).
	FP uint64
}

// busIndex returns the machine-stable bus identity, or -1.
func (s *System) busIndex(b *bus.Bus) int {
	for r := 0; r < s.cfg.N; r++ {
		if s.rows[r] == b {
			return r
		}
	}
	for c := 0; c < s.cfg.N; c++ {
		if s.cols[c] == b {
			return s.cfg.N + c
		}
	}
	return -1
}

// opIdentFP hashes an operation's protocol-visible payload under the
// identity row labeling, for transition identity (not state
// canonicalization — sleep sets compare transitions along one replayed
// path, where physical coordinates are stable).
func opIdentFP(op *Op) uint64 {
	if op.fpIdentOK {
		return op.fpIdent
	}
	h := fnvOffset
	h.byte(byte(op.Txn))
	h.u64(uint64(op.Flags))
	h.u64(uint64(op.Line))
	h.u64(uint64(int64(op.Origin.Row)))
	h.u64(uint64(int64(op.Origin.Col)))
	h.u64(uint64(int64(op.Target.Row)))
	h.u64(uint64(int64(op.Target.Col)))
	h.bit(op.Data != nil)
	for _, w := range op.Data {
		h.u64(w)
	}
	op.fpIdent, op.fpIdentOK = uint64(h), true
	return uint64(h)
}

// TagInfo classifies tag for the model checker; ok is false for tags the
// coherence layer does not recognize (the caller's own driver events).
func (s *System) TagInfo(tag any) (info TagInfo, ok bool) {
	switch t := tag.(type) {
	case EnqueueTag:
		h := fnvOffset
		h.byte(0x10)
		h.u64(uint64(int64(t.Issuer.Row)))
		h.u64(uint64(int64(t.Issuer.Col)))
		h.byte(byte(t.Dim))
		b := s.busIndex(t.bus)
		h.u64(uint64(int64(b)))
		h.u64(opIdentFP(t.Op))
		return TagInfo{Kind: TagEnqueue, Bus: b, Issuer: t.Issuer, FP: uint64(h)}, true
	case bus.GrantTag:
		h := fnvOffset
		h.byte(0x11)
		b := s.busIndex(t.B)
		h.u64(uint64(int64(b)))
		return TagInfo{Kind: TagGrant, Bus: b, FP: uint64(h)}, true
	case bus.DeliverTag:
		h := fnvOffset
		h.byte(0x12)
		b := s.busIndex(t.B)
		h.u64(uint64(int64(b)))
		if op, isOp := t.Pkt.(*Op); isOp {
			h.u64(opIdentFP(op))
		}
		return TagInfo{Kind: TagDeliver, Bus: b, FP: uint64(h)}, true
	}
	return TagInfo{Bus: -1}, false
}

// BusIndexByName maps a bus's diagnostic name to the machine-stable bus
// identity used by TagInfo, or -1. The model checker uses it to classify
// arbitration choice points, which are identified by bus name.
func (s *System) BusIndexByName(name string) int {
	for r := 0; r < s.cfg.N; r++ {
		if s.rows[r].Name() == name {
			return r
		}
	}
	for c := 0; c < s.cfg.N; c++ {
		if s.cols[c].Name() == name {
			return s.cfg.N + c
		}
	}
	return -1
}

// PacketFP fingerprints a bus packet (a *Op) for the model checker's
// transition identities at arbitration choice points; ok is false for
// foreign packet types.
func (s *System) PacketFP(pkt any) (uint64, bool) {
	op, isOp := pkt.(*Op)
	if !isOp {
		return 0, false
	}
	return opIdentFP(op), true
}
