package coherence

import (
	"testing"

	"multicube/internal/cache"
	"multicube/internal/topology"
)

// These tests exercise the robustness property of Section 3: "the valid
// bit in memory provides a robustness in the protocol that can greatly
// simplify the controller design. ... if the controller fails to respond
// under such a circumstance, the request is routed (incorrectly) onto the
// home column ... and retransmitted by main memory, since the line in
// memory is invalid. It is then forwarded onto the row bus of the
// originator, just as if it were an original request. This robustness
// means that a controller can, on occasion, simply discard such requests
// without breaking the protocol."

func TestControllerDiscardsRequestOnce(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	holder := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[2] = 88

	// The controller that should route the next request fails exactly
	// once; the protocol must recover through the memory valid bit.
	failures := 1
	s.SuppressSignal = func(n topology.Coord, op *Op) bool {
		if failures > 0 {
			failures--
			return true
		}
		return false
	}
	reader := s.Node(at(2, 3))
	res := do(t, k, func(done func(Result)) { reader.Read(line, done) })
	if e, ok := reader.Cache().Lookup(line); !ok || e.Data[2] != 88 {
		t.Fatal("read did not recover the modified data")
	}
	if s.DroppedOps() != 1 {
		t.Errorf("dropped ops = %d, want 1", s.DroppedOps())
	}
	// The recovery path costs extra operations (home column detour,
	// memory reissue, row retransmission).
	if res.Trace.Ops() <= 5 {
		t.Errorf("recovery used only %d ops; expected a detour", res.Trace.Ops())
	}
	if s.MemoryAt(1).Store().Stats().Reissues == 0 {
		t.Error("memory never reissued the request")
	}
	s.SuppressSignal = nil
	checkQuiet(t, s)
}

func TestControllerDiscardsRepeatedly(t *testing.T) {
	// Several consecutive failures: the retry loop keeps re-driving the
	// request until the controller finally answers.
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	holder := s.Node(at(1, 1))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	holder.CacheEntry(line).Data[3] = 7

	failures := 4
	s.SuppressSignal = func(n topology.Coord, op *Op) bool {
		if failures > 0 {
			failures--
			return true
		}
		return false
	}
	writer := s.Node(at(3, 0))
	do(t, k, func(done func(Result)) { writer.Write(line, done) })
	if e, ok := writer.Cache().Lookup(line); !ok || e.State != Modified || e.Data[3] != 7 {
		t.Fatal("ownership transfer did not survive repeated discards")
	}
	if s.DroppedOps() != 4 {
		t.Errorf("dropped = %d, want 4", s.DroppedOps())
	}
	s.SuppressSignal = nil
	checkQuiet(t, s)
}

func TestRandomDiscardsUnderStorm(t *testing.T) {
	// Drop every 7th routable request during a random workload: the
	// machine must still quiesce with correct global state.
	k, s := testSystem(t, 4)
	count := 0
	s.SuppressSignal = func(n topology.Coord, op *Op) bool {
		if n.Col == int(op.Line)%4 {
			// The failing controller must not also be the home-column
			// attendant: recovery relies on the home column forwarding
			// the request to memory (the paper's robustness argument
			// assumes a live home column).
			return false
		}
		count++
		return count%7 == 0
	}
	runRandomWorkload(t, k, s, 3, 20, 5)
	if s.DroppedOps() == 0 {
		t.Error("fault injector never fired")
	}
	s.SuppressSignal = nil
	checkQuiet(t, s)
}

func TestFaultHookDropsTracedOp(t *testing.T) {
	// The generic Fault hook drops an arbitrary issued operation; for a
	// droppable op (the row request itself never leaves the requester,
	// so the transaction never starts — the processor would retry at a
	// higher level). Here we only verify accounting and that the machine
	// does not corrupt state.
	k, s := testSystem(t, 4)
	dropped := false
	s.Fault = func(dim Dim, issuer topology.Coord, op *Op) bool {
		if !dropped && op.Flags.Has(REQUEST) && dim == Row {
			dropped = true
			return true
		}
		return false
	}
	nd := s.Node(at(0, 0))
	completed := false
	nd.Read(3, func(Result) { completed = true })
	k.Run()
	if completed {
		t.Fatal("read completed although its request was dropped")
	}
	if s.DroppedOps() != 1 {
		t.Errorf("dropped = %d, want 1", s.DroppedOps())
	}
	// The machine is otherwise intact: other nodes still work.
	s.Fault = nil
	do(t, k, func(done func(Result)) { s.Node(at(1, 1)).Read(3, done) })
}
