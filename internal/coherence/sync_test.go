package coherence

import (
	"testing"

	"multicube/internal/cache"
	"multicube/internal/memory"
	topo "multicube/internal/topology"
)

func TestTASAgainstMemorySuccess(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	nd := s.Node(at(0, 0))
	res := do(t, k, func(done func(Result)) { nd.TestAndSet(line, done) })
	if !res.Acquired {
		t.Fatal("TAS on a free memory line failed")
	}
	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[LockWord] != 1 {
		t.Fatal("line not held modified with lock set")
	}
	checkQuiet(t, s)
}

func TestTASAgainstMemoryFailure(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	s.MemoryAt(2).Store().Write(memory.Line(line), []uint64{1, 0, 0, 0}) // lock held
	nd := s.Node(at(1, 1))
	res := do(t, k, func(done func(Result)) { nd.TestAndSet(line, done) })
	if res.Acquired {
		t.Fatal("TAS on a held lock succeeded")
	}
	// Failure returns only the notification: no copy was acquired and
	// memory keeps the line valid.
	if _, ok := nd.Cache().Lookup(line); ok {
		t.Error("failed TAS left a cached copy")
	}
	if !s.MemoryAt(2).Store().Valid(memory.Line(line)) {
		t.Error("failed TAS invalidated memory")
	}
	checkQuiet(t, s)
}

func TestTASRemoteSuccessMovesLine(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	holder := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { holder.Write(line, done) })
	// Lock word is zero: the remote TAS succeeds and the line moves.
	taker := s.Node(at(2, 3))
	res := do(t, k, func(done func(Result)) { taker.TestAndSet(line, done) })
	if !res.Acquired {
		t.Fatal("remote TAS on free lock failed")
	}
	e, ok := taker.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[LockWord] != 1 {
		t.Fatal("lock line did not move to taker")
	}
	if _, ok := holder.Cache().Lookup(line); ok {
		t.Error("old holder kept the line")
	}
	checkQuiet(t, s)
}

func TestTASRemoteFailureLeavesLine(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	holder := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { holder.TestAndSet(line, done) }) // holder takes the lock
	taker := s.Node(at(2, 3))
	res := do(t, k, func(done func(Result)) { taker.TestAndSet(line, done) })
	if res.Acquired {
		t.Fatal("TAS succeeded on a held lock")
	}
	// "On failure, only the notification of failure is returned — the
	// line remains in the remote cache."
	e, ok := holder.Cache().Lookup(line)
	if !ok || e.State != Modified {
		t.Fatal("holder lost the line on a failed TAS")
	}
	// The MLT entry must have been restored so future requests route.
	for r := 0; r < 4; r++ {
		if !s.Node(at(r, 1)).Table().Contains(0) {
			t.Errorf("MLT entry at (%d,1) not restored", r)
		}
	}
	checkQuiet(t, s)
}

func TestTASLocalPathsNoBusOps(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(3)
	nd := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { nd.TestAndSet(line, done) })
	opsBefore := s.RowBus(0).Stats().Ops

	// Second TAS on our own modified line: local failure, no bus ops.
	res := do(t, k, func(done func(Result)) { nd.TestAndSet(line, done) })
	if res.Acquired {
		t.Fatal("local TAS re-acquired a held lock")
	}
	if got := s.RowBus(0).Stats().Ops; got != opsBefore {
		t.Errorf("local TAS used %d bus ops", got-opsBefore)
	}
	// Release locally, reacquire locally.
	nd.CacheEntry(line).Data[LockWord] = 0
	res = do(t, k, func(done func(Result)) { nd.TestAndSet(line, done) })
	if !res.Acquired {
		t.Fatal("local TAS on free held line failed")
	}
	if got := s.RowBus(0).Stats().Ops; got != opsBefore {
		t.Errorf("local TAS used %d bus ops", got-opsBefore)
	}
	checkQuiet(t, s)
}

func TestTASSharedCopyShortCircuitsFailure(t *testing.T) {
	// A coherent shared copy showing the lock held fails without a bus
	// operation (the "test" of test-and-test-and-set in hardware).
	k, s := testSystem(t, 4)
	line := cache.Line(1)
	s.MemoryAt(1).Store().Write(memory.Line(line), []uint64{1, 0, 0, 0})
	nd := s.Node(at(2, 2))
	do(t, k, func(done func(Result)) { nd.Read(line, done) })
	executed := k.Executed()
	res := do(t, k, func(done func(Result)) { nd.TestAndSet(line, done) })
	if res.Acquired {
		t.Fatal("TAS acquired a held lock")
	}
	if k.Executed() != executed {
		t.Errorf("shared-copy fail used %d events", k.Executed()-executed)
	}
	checkQuiet(t, s)
}

func TestSyncAcquireUncontended(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	nd := s.Node(at(1, 0))
	res := do(t, k, func(done func(Result)) { nd.SyncAcquire(line, done) })
	if !res.Acquired || res.MustSpin {
		t.Fatalf("uncontended sync acquire: %+v", res)
	}
	e, ok := nd.Cache().Lookup(line)
	if !ok || e.State != Modified || e.Data[LockWord] != 1 {
		t.Fatal("lock line not held modified")
	}
	if !e.Pinned {
		t.Error("held lock line not pinned against victimization")
	}
	// Release with no waiters: the line stays, lock word clears, and the
	// pin is lifted.
	if !nd.SyncRelease(line) {
		t.Fatal("release reported degeneration")
	}
	k.Run()
	if e.Data[LockWord] != 0 {
		t.Error("lock word not cleared")
	}
	if e.Pinned {
		t.Error("released idle lock line still pinned")
	}
	checkQuiet(t, s)
}

func TestSyncHandoffFromIdleHolder(t *testing.T) {
	// The lock line sits modified-but-free in one cache; a SYNC join gets
	// it handed over directly.
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	holder := s.Node(at(0, 1))
	do(t, k, func(done func(Result)) { holder.SyncAcquire(line, done) })
	if !holder.SyncRelease(line) {
		t.Fatal("release failed")
	}
	k.Run()

	joiner := s.Node(at(3, 2))
	res := do(t, k, func(done func(Result)) { joiner.SyncAcquire(line, done) })
	if !res.Acquired {
		t.Fatalf("join of idle lock: %+v", res)
	}
	if _, ok := holder.Cache().Lookup(line); ok {
		t.Error("old holder kept the line")
	}
	e, _ := joiner.Cache().Lookup(line)
	if e == nil || e.Data[LockWord] != 1 {
		t.Error("joiner does not hold the lock")
	}
	checkQuiet(t, s)
}

func TestSyncQueueFIFOHandoff(t *testing.T) {
	// Three nodes contend; the queue must deliver the lock in join order
	// with a direct cache-to-cache transfer each time.
	k, s := testSystem(t, 4)
	line := cache.Line(3)
	a := s.Node(at(0, 0))
	b := s.Node(at(1, 2))
	c := s.Node(at(3, 1))

	do(t, k, func(done func(Result)) { a.SyncAcquire(line, done) }) // a holds the lock

	var order []string
	b.SyncAcquire(line, func(r Result) {
		if !r.Acquired {
			t.Errorf("b acquire: %+v", r)
		}
		order = append(order, "b")
	})
	k.Run()
	c.SyncAcquire(line, func(r Result) {
		if !r.Acquired {
			t.Errorf("c acquire: %+v", r)
		}
		order = append(order, "c")
	})
	k.Run()
	if len(order) != 0 {
		t.Fatalf("waiters acquired while lock held: %v", order)
	}
	// b and c are reserved queue members now.
	if e := b.Cache().Probe(line); e == nil || e.State != Reserved {
		t.Fatal("b has no reserved copy")
	}

	if !a.SyncRelease(line) {
		t.Fatal("a release degenerated")
	}
	k.Run()
	if len(order) != 1 || order[0] != "b" {
		t.Fatalf("after a's release, order = %v, want [b]", order)
	}
	if !b.SyncRelease(line) {
		t.Fatal("b release degenerated")
	}
	k.Run()
	if len(order) != 2 || order[1] != "c" {
		t.Fatalf("after b's release, order = %v, want [b c]", order)
	}
	// c holds the lock; release with empty queue.
	if !c.SyncRelease(line) {
		t.Fatal("c release degenerated")
	}
	k.Run()
	checkQuiet(t, s)
}

func TestSyncLongQueueAcrossGrid(t *testing.T) {
	// Every node in a 3×3 grid joins the same queue; the lock must visit
	// all of them exactly once, in join order.
	k, s := testSystem(t, 3)
	line := cache.Line(1)
	first := s.Node(at(0, 0))
	do(t, k, func(done func(Result)) { first.SyncAcquire(line, done) })

	var got []int
	want := []int{}
	idx := 0
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if r == 0 && c == 0 {
				continue
			}
			id := r*3 + c
			want = append(want, id)
			nd := s.Node(at(r, c))
			nd.SyncAcquire(line, func(res Result) {
				if !res.Acquired {
					t.Errorf("node %d: %+v", id, res)
				}
				got = append(got, id)
			})
			k.Run() // join completes (QUEUED) before the next joins
			idx++
		}
	}
	// Now release around the ring.
	if !first.SyncRelease(line) {
		t.Fatal("first release degenerated")
	}
	k.Run()
	for _, id := range want[:len(want)-1] {
		nd := s.NodeByID(topo.NodeID(id))
		if !nd.SyncRelease(line) {
			t.Fatalf("node %d release degenerated", id)
		}
		k.Run()
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handoff order %v, want %v", got, want)
		}
	}
	// Last holder releases into an empty queue.
	last := s.NodeByID(topo.NodeID(want[len(want)-1]))
	if !last.SyncRelease(line) {
		t.Fatal("last release degenerated")
	}
	k.Run()
	checkQuiet(t, s)
}

func TestSyncFailWhenLockWordSetInMemory(t *testing.T) {
	// The lock word is set but the line is unmodified (a holder wrote it
	// back): SYNC degenerates and the caller must spin with TAS.
	k, s := testSystem(t, 4)
	line := cache.Line(2)
	s.MemoryAt(2).Store().Write(memory.Line(line), []uint64{1, 0, 0, 0})
	nd := s.Node(at(0, 0))
	res := do(t, k, func(done func(Result)) { nd.SyncAcquire(line, done) })
	if res.Acquired || !res.MustSpin {
		t.Fatalf("sync against held memory lock: %+v", res)
	}
	// The reserved allocation was cleaned up.
	if e := nd.Cache().Probe(line); e != nil && e.State == Reserved {
		t.Error("reserved copy leaked")
	}
	checkQuiet(t, s)
}

func TestSyncLocalReacquire(t *testing.T) {
	k, s := testSystem(t, 4)
	line := cache.Line(0)
	nd := s.Node(at(1, 1))
	do(t, k, func(done func(Result)) { nd.SyncAcquire(line, done) })
	// Second acquire from the same node while held: must spin.
	res := do(t, k, func(done func(Result)) { nd.SyncAcquire(line, done) })
	if !res.MustSpin {
		t.Fatalf("local re-acquire: %+v", res)
	}
	// Release locally, then re-acquire without bus traffic.
	nd.SyncRelease(line)
	k.Run()
	before := k.Executed()
	res = do(t, k, func(done func(Result)) { nd.SyncAcquire(line, done) })
	if !res.Acquired || k.Executed() != before {
		t.Fatalf("local reacquire used bus: %+v", res)
	}
	nd.SyncRelease(line)
	k.Run()
	checkQuiet(t, s)
}
