// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis). It also
// carries the two-level hierarchy's multilevel-inclusion discipline:
// every snooping-cache eviction must purge the registered upper-level
// (processor cache) views, statically enforced by the vet inclusion pass
// against purgeUpper and dynamically by CheckInvariants invariant 6.
//
//multicube:deterministic
//multicube:inclusion
package coherence

import (
	"fmt"

	"multicube/internal/cache"
	"multicube/internal/mlt"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// Result reports the outcome of a completed processor transaction.
type Result struct {
	// Acquired reports test-and-set or SYNC success.
	Acquired bool
	// MustSpin reports that a SYNC acquire degenerated and the caller
	// should fall back to spinning with test-and-set (Section 4's
	// degenerate path).
	MustSpin bool
	// Trace holds the transaction's bus-operation accounting; zero for
	// operations satisfied locally without a transaction.
	Trace TxnTrace
}

// pending is the one outstanding processor request of a controller.
// Requests are non-overlapping (Section 5's modeling assumption and the
// protocol's memoryless design): a node has at most one.
type pending struct {
	txn   Txn
	flags Flags // ALLOC carry-over
	line  cache.Line
	trace *TxnTrace
	done  func(Result)
	// poisoned records that an invalidating broadcast for this line
	// passed while our READ reply was in flight: the arriving data is
	// stale the moment it lands and must be discarded and re-requested.
	// (The snooping controller observes every operation on its buses, so
	// detecting this costs no extra hardware.)
	//
	//multicube:fpfield guard=Node
	poisoned bool
	// queued records that our SYNC join was admitted to the distributed
	// queue (a QUEUED notification arrived): our reserved copy is now
	// the queue tail and must answer requests routed to this column. A
	// reserved copy whose join is still in flight must stay silent.
	//
	//multicube:fpfield guard=Node
	queued bool
}

// NodeStats counts per-node protocol events.
type NodeStats struct {
	Reads         uint64 // processor read requests (hits and misses)
	Writes        uint64 // processor write requests
	ReadHits      uint64
	WriteHits     uint64
	Transactions  uint64 // bus transactions initiated
	Invalidations uint64 // lines purged by remote activity
	Reissues      uint64 // requests retransmitted after lost races
	Deferred      uint64 // requests bounced off a Reserved holder
}

// Node is one snooping-cache controller: a processor's large second-level
// cache, its modified line table, and its connections to one row bus and
// one column bus.
type Node struct {
	sys   *System
	id    topology.Coord
	l2    *cache.Cache
	table *mlt.Table
	// k is the kernel this node schedules on and reads its clock from:
	// the system kernel, or the node's column-partition kernel in
	// parallel mode. shard is the matching accounting shard.
	k     *sim.Kernel
	shard *sysShard

	rowIdx, colIdx int

	//multicube:fpfield
	pend *pending
	// wbCont is the "continue request" for the outstanding WRITEBACK.
	//
	//multicube:fpfield
	wbCont func()

	// OnInvalidate, when set, is called whenever a line leaves the
	// snooping cache for coherence reasons; the machine layer uses it to
	// keep the write-through processor cache a strict subset.
	OnInvalidate func(line cache.Line)

	// purgedAt records when each line last left this cache, gating the
	// snarf optimization against stale in-flight replies.
	purgedAt map[cache.Line]sim.Time

	// gen counts mutations of fingerprint-visible node state (L2, MLT,
	// pending transaction, wbCont). It is bumped conservatively at every
	// entry point that can mutate the node — processor-side APIs and the
	// two snoop dispatchers — which over-approximates actual change;
	// FPCache compares it to skip rehashing unchanged nodes.
	//
	//multicube:gencounter
	gen uint64

	stats NodeStats
}

func newNode(s *System, id topology.Coord) (*Node, error) {
	l2, err := cache.New(cache.Config{
		Lines:      s.cfg.CacheLines,
		Assoc:      s.cfg.CacheAssoc,
		BlockWords: s.cfg.BlockWords,
	})
	if err != nil {
		return nil, err
	}
	table, err := mlt.New(mlt.Config{Entries: s.cfg.MLTEntries, Assoc: s.cfg.MLTAssoc})
	if err != nil {
		return nil, err
	}
	return &Node{
		sys: s, id: id, l2: l2, table: table,
		k: s.colKernel(id.Col), shard: s.colShard(id.Col),
		purgedAt: make(map[cache.Line]sim.Time),
	}, nil
}

// ID returns the node's grid coordinate.
func (n *Node) ID() topology.Coord { return n.id }

// Cache exposes the snooping cache, primarily for the machine layer's
// word-level access and for invariant checks.
func (n *Node) Cache() *cache.Cache { return n.l2 }

// Gen reports the node's fingerprint-visible mutation counter (see the
// gen field). Checkers use it to skip re-scanning unchanged nodes.
func (n *Node) Gen() uint64 { return n.gen }

// Table exposes the modified line table for invariant checks.
func (n *Node) Table() *mlt.Table { return n.table }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Busy reports whether a processor transaction is outstanding.
func (n *Node) Busy() bool { return n.pend != nil }

func (n *Node) onHomeColumn(line cache.Line) bool {
	return n.sys.homeColumn(line) == n.id.Col
}

// --- bus issue helpers -------------------------------------------------

func (n *Node) issueRow(op *Op) {
	n.sys.recordIntent(Row, op)
	if n.sys.Fault != nil && n.sys.Fault(Row, n.id, op) {
		n.sys.dropped++
		return
	}
	if op.trace != nil {
		op.trace.RowOps++
	}
	if n.sys.OpLog != nil {
		n.sys.OpLog(Row, n.id, op)
	}
	// Row buses are the cross-partition seam: inside a parallel window
	// the request is deferred to the next synchronization boundary,
	// where the runner replays it in deterministic merge order. In
	// sequential mode, and in the runner's own coordinator phases, the
	// request proceeds inline exactly as before.
	if par := n.sys.par; par != nil && !par.InGlobal() {
		par.Defer(n.id.Col, func() { n.sys.rows[n.id.Row].Request(n.rowIdx, op) })
		return
	}
	n.sys.rows[n.id.Row].Request(n.rowIdx, op)
}

func (n *Node) issueCol(op *Op) {
	n.sys.recordIntent(Col, op)
	if n.sys.Fault != nil && n.sys.Fault(Col, n.id, op) {
		n.sys.dropped++
		return
	}
	if op.trace != nil {
		op.trace.ColOps++
	}
	if n.sys.OpLog != nil {
		n.sys.OpLog(Col, n.id, op)
	}
	n.sys.cols[n.id.Col].Request(n.colIdx, op)
}

// issueRowAfter and issueColAfter model device latency (a cache lookup
// before the data can be driven) between snooping an operation and
// issuing the response. Protocol state was already updated at snoop time.
func (n *Node) issueRowAfter(d sim.Time, op *Op) {
	if d == 0 {
		n.issueRow(op)
		return
	}
	n.sys.recordIntent(Row, op)
	tag := EnqueueTag{Issuer: n.id, Dim: Row, Op: op, bus: n.sys.rows[n.id.Row]}
	n.k.AfterTagged(d, tag, func() { n.issueRow(op) })
}

func (n *Node) issueColAfter(d sim.Time, op *Op) {
	if d == 0 {
		n.issueCol(op)
		return
	}
	n.sys.recordIntent(Col, op)
	tag := EnqueueTag{Issuer: n.id, Dim: Col, Op: op, bus: n.sys.cols[n.id.Col]}
	n.k.AfterTagged(d, tag, func() { n.issueCol(op) })
}

// dataOp and replyOp build payload-carrying operations stamped with this
// node's clock; recordCompletion charges the node's shard.
func (n *Node) dataOp(txn Txn, flags Flags, origin topology.Coord, line cache.Line, data []uint64, trace *TxnTrace) *Op {
	return n.sys.dataOpAt(n.k.Now(), txn, flags, origin, line, data, trace)
}

func (n *Node) replyOp(txn Txn, flags Flags, origin topology.Coord, line cache.Line, data []uint64, trace *TxnTrace) *Op {
	return n.sys.replyOpAt(n.k.Now(), txn, flags, origin, line, data, trace)
}

func (n *Node) recordCompletion(tr *TxnTrace) {
	n.shard.recordCompletion(n.k.Now(), tr)
}

// --- processor interface ------------------------------------------------

// Read performs a processor read reference for line. done is called
// (possibly synchronously, on a hit) when the line is readable in the
// snooping cache.
func (n *Node) Read(line cache.Line, done func(Result)) {
	n.gen++
	n.stats.Reads++
	if _, ok := n.l2.Access(line); ok {
		n.stats.ReadHits++
		done(Result{})
		return
	}
	n.startTransaction(READ, 0, line, done)
}

// Write performs a processor write reference: it obtains the line in
// modified mode. The caller applies the actual word write through
// CacheEntry once done fires.
func (n *Node) Write(line cache.Line, done func(Result)) {
	n.gen++
	n.stats.Writes++
	if e, ok := n.l2.Access(line); ok {
		switch e.State {
		case Modified:
			n.stats.WriteHits++
			done(Result{})
			return
		case Shared:
			// Write hit on a shared line: an upgrade READMOD, no victim
			// needed ("else if (line is shared) then READMOD (ROW,
			// REQUEST)").
			n.beginPending(READMOD, 0, line, done)
			n.issueRow(n.sys.addrOp(READMOD, REQUEST, n.id, line, n.pend.trace))
			return
		}
	}
	n.startTransaction(READMOD, 0, line, done)
}

// Allocate performs the ALLOCATE hint of Section 3: the processor intends
// to modify the entire line without regard to its prior contents, so the
// reply is an acknowledgement rather than data. On completion the line is
// resident in modified mode, zero-filled.
func (n *Node) Allocate(line cache.Line, done func(Result)) {
	n.gen++
	n.stats.Writes++
	if e, ok := n.l2.Access(line); ok && e.State == Modified {
		n.stats.WriteHits++
		done(Result{})
		return
	}
	if e, ok := n.l2.Lookup(line); ok && e.State == Shared {
		n.beginPending(READMOD, ALLOC, line, done)
		n.issueRow(n.sys.addrOp(READMOD, REQUEST|ALLOC, n.id, line, n.pend.trace))
		return
	}
	n.startTransaction(READMOD, ALLOC, line, done)
}

// TestAndSet performs the remote test-and-set transaction of Section 4 on
// the line's LockWord. Result.Acquired reports success. Local copies are
// exploited to avoid bus operations where the protocol allows.
func (n *Node) TestAndSet(line cache.Line, done func(Result)) {
	n.gen++
	if e, ok := n.l2.Lookup(line); ok {
		switch e.State {
		case Modified:
			// The line is ours: test-and-set locally, no bus operation.
			if e.Data[LockWord] == 0 {
				e.Data[LockWord] = 1
				done(Result{Acquired: true})
			} else {
				done(Result{})
			}
			return
		case Reserved:
			// "A line that has been reserved locally with the SYNC
			// transaction will be recognized when a test-and-set is
			// initiated, and the test-and-set will fail without
			// requiring a bus operation."
			done(Result{})
			return
		case Shared:
			if e.Data[LockWord] != 0 {
				// Coherent shared copy already shows the lock held:
				// fail locally (the test of test-and-test-and-set,
				// provided by the hardware).
				done(Result{})
				return
			}
		}
	}
	n.startTransaction(TAS, 0, line, done)
}

// WriteBack initiates an explicit WRITEBACK transaction for a modified
// line: main memory is made current and the line changes to global state
// unmodified, remaining cached shared. done fires when the processor
// request may continue. A line not held modified completes immediately.
func (n *Node) WriteBack(line cache.Line, done func(Result)) {
	n.gen++
	e, ok := n.l2.Lookup(line)
	if !ok || e.State != Modified {
		done(Result{})
		return
	}
	trace := &TxnTrace{Txn: WRITEBACK, Line: line, Started: n.k.Now()}
	//multicube:fpexempt continuation of WriteBack, which bumped at entry
	n.startWriteback(line, trace, func() {
		// "mark line shared" — the generic (non-victim) path.
		if e, ok := n.l2.Lookup(line); ok && e.State == Modified {
			e.State = Shared
		}
		n.recordCompletion(trace)
		done(Result{Trace: *trace})
	})
}

// CacheEntry returns the snooping-cache entry for line, or nil. The
// machine layer uses it for word-level loads and stores after Read/Write
// complete.
func (n *Node) CacheEntry(line cache.Line) *cache.Entry {
	e, ok := n.l2.Lookup(line)
	if !ok {
		return nil
	}
	return e
}

// --- transaction initiation ----------------------------------------------

//multicube:fpexempt called only from processor entry points, which bump
func (n *Node) beginPending(txn Txn, flags Flags, line cache.Line, done func(Result)) {
	if n.pend != nil {
		panic(fmt.Sprintf("coherence: node %v issued %v(%d) with %v(%d) outstanding",
			n.id, txn, line, n.pend.txn, n.pend.line))
	}
	n.stats.Transactions++
	tr := &TxnTrace{Txn: txn, Line: line, Started: n.k.Now()}
	n.pend = &pending{txn: txn, flags: flags, line: line, trace: tr, done: done}
}

// startTransaction is the miss path of the READ/READMOD/TAS initiation
// procedures: reserve space in the cache (writing back a modified victim
// first), then place the request on the row bus.
func (n *Node) startTransaction(txn Txn, flags Flags, line cache.Line, done func(Result)) {
	n.beginPending(txn, flags, line, done)
	issue := func() {
		n.issueRow(n.sys.addrOp(txn, REQUEST|flags, n.id, line, n.pend.trace))
	}
	v := n.l2.SelectVictim(line)
	if v != nil && v.State == Modified {
		victim := v.Line
		wbTrace := &TxnTrace{Txn: WRITEBACK, Line: victim, Started: n.k.Now()}
		//multicube:fpexempt continuation of an entry point that bumped
		n.startWriteback(victim, wbTrace, func() {
			// "wait for continue; mark line invalid" — the victim slot
			// is freed for the incoming line.
			n.l2.Invalidate(victim)
			n.notifyInvalidate(victim)
			n.recordCompletion(wbTrace)
			issue()
		})
		return
	}
	issue()
}

// startWriteback initiates WRITEBACK(COLUMN, REMOVE) for a modified line
// and runs cont when the protocol signals "continue request".
//
//multicube:fpexempt called only from entry points that bump
func (n *Node) startWriteback(line cache.Line, trace *TxnTrace, cont func()) {
	if n.wbCont != nil {
		panic(fmt.Sprintf("coherence: node %v has two outstanding writebacks", n.id))
	}
	n.wbCont = cont
	n.issueCol(n.sys.addrOp(WRITEBACK, REMOVE, n.id, line, trace))
}

// complete finishes the outstanding transaction, if it matches.
//
//multicube:fpexempt called only under the snoop dispatchers, which bump
func (n *Node) complete(op *Op, res Result) {
	p := n.pend
	if p == nil || p.line != op.Line || p.txn != op.Txn {
		n.shard.strays++
		return
	}
	n.pend = nil
	res.Trace = *p.trace
	n.recordCompletion(p.trace)
	p.done(res)
}

// matchesPending reports whether op is the reply our outstanding request
// is waiting for.
func (n *Node) matchesPending(op *Op) bool {
	return n.pend != nil && n.pend.line == op.Line && n.pend.txn == op.Txn
}

// notifyInvalidate tells the machine layer a line left the cache and
// timestamps the departure for snarf staleness checks.
func (n *Node) notifyInvalidate(line cache.Line) {
	n.purgedAt[line] = n.k.Now()
	n.purgeUpper(line)
}

// purgeUpper drops the line from the registered upper-level (processor
// cache) views, maintaining multilevel inclusion. Split from
// notifyInvalidate for eviction paths that must not stamp purgedAt —
// after a Drop the entry leaves the cache entirely, so the snarf
// staleness gate (which requires a retained Invalid entry) never
// consults the timestamp, and stamping would perturb fingerprints for
// nothing.
//
//multicube:inclusion-purge
func (n *Node) purgeUpper(line cache.Line) {
	if n.OnInvalidate != nil {
		n.OnInvalidate(line)
	}
}

// writeLine installs data for the pending request's line and returns the
// entry. Installation never displaces a modified line: the initiation
// procedure wrote back and invalidated a modified victim before issuing
// the request, so the set has a free or clean slot.
//
//multicube:fpexempt called only under the snoop dispatchers, which bump
func (n *Node) writeLine(line cache.Line, state cache.State, data []uint64) *cache.Entry {
	v := n.l2.Insert(line, state, data)
	if v.Displaced && v.State == Modified {
		panic(fmt.Sprintf("coherence: node %v displaced modified line %d on fill", n.id, v.Line))
	}
	if v.Displaced && v.State != Invalid {
		n.notifyInvalidate(v.Line)
	}
	e, ok := n.l2.Lookup(line)
	if !ok {
		panic("coherence: line missing immediately after insert")
	}
	return e
}

// tableInsert adds an entry to this node's modified line table, handling
// overflow per Appendix A: the displaced entry's line, if held modified by
// this node, is written back to memory and marked shared. Every node in
// the column runs the same deterministic replacement, so exactly one node
// (the holder) performs the writeback.
//
//multicube:fpexempt called only under the snoop dispatchers, which bump
func (n *Node) tableInsert(line cache.Line, trace *TxnTrace) {
	victim, overflow := n.table.Insert(mlt.Line(line))
	if !overflow {
		return
	}
	ovLine := cache.Line(victim)
	e, ok := n.l2.Lookup(ovLine)
	if !ok {
		return
	}
	if e.Pinned && (e.State == Modified || e.State == Reserved) {
		// A sync-active lock line (a held lock, or a queue tail's
		// reserved placeholder): forcing it to global state unmodified —
		// or silently dropping its entry — would strand the waiter queue
		// (Section 4's degenerate purge). Re-insert its entry instead;
		// the table must be sized for the active lock working set
		// (footnote 7's sizing requirement).
		n.issueCol(n.sys.addrOp(READMOD, INSERT, n.id, ovLine, nil))
		return
	}
	if e.State != Modified {
		return
	}
	data := append([]uint64(nil), e.Data...)
	if n.onHomeColumn(ovLine) {
		n.issueCol(n.dataOp(WRITEBACK, UPDATE|MEMORY, n.id, ovLine, data, trace))
	} else {
		n.issueRow(n.dataOp(WRITEBACK, UPDATE, n.id, ovLine, data, trace))
	}
	e.State = Shared // "mark overflow line shared"
}
