package coherence

import (
	"fmt"
	"sort"

	"multicube/internal/cache"
	"multicube/internal/memory"
	"multicube/internal/mlt"
	"multicube/internal/topology"
)

// CheckInvariants walks every cache, modified line table and memory
// module and returns all violations of the paper's global-state
// invariants. It is meaningful only at quiescence — when no bus
// operations are in flight and no processor requests are outstanding —
// since the protocol admits transition periods where the global state is
// indeterminate (Section 3, footnote 3).
//
// The invariants checked:
//
//  1. A line is held modified (or reserved) by at most one cache
//     system-wide, and a modified line coexists with no shared copies.
//  2. A line is modified somewhere exactly when its memory valid bit is
//     clear.
//  3. Every shared copy equals the memory contents.
//  4. All modified line tables within a column are identical, and their
//     contents are exactly the lines held modified in that column.
//  5. No reserved copies or pinned entries remain (a reserved copy at
//     quiescence means a SYNC handoff was lost).
//  6. Every upper-level cache view registered with RegisterInclusion is a
//     subset of its node's snooping cache (the multilevel inclusion
//     discipline: the write-through processor cache always holds a subset
//     of the snooping cache, so the latter can snoop on its behalf).
func CheckInvariants(s *System) []error {
	var errs []error
	n := s.cfg.N

	type holder struct {
		id    topology.Coord
		state cache.State
	}
	holders := make(map[cache.Line][]holder)
	sharers := make(map[cache.Line][]topology.Coord)

	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nd := s.nodes[r][c]
			if nd.pend != nil {
				errs = append(errs, fmt.Errorf("node %v has outstanding %v(%d): not quiescent",
					nd.id, nd.pend.txn, nd.pend.line))
			}
			if nd.wbCont != nil {
				errs = append(errs, fmt.Errorf("node %v has outstanding writeback: not quiescent", nd.id))
			}
			nd.l2.ForEach(func(e *cache.Entry) {
				switch e.State {
				case Modified:
					holders[e.Line] = append(holders[e.Line], holder{nd.id, e.State})
				case Reserved:
					errs = append(errs, fmt.Errorf("node %v holds line %d reserved at quiescence", nd.id, e.Line))
					holders[e.Line] = append(holders[e.Line], holder{nd.id, e.State})
				case Shared:
					sharers[e.Line] = append(sharers[e.Line], nd.id)
				}
				if e.Pinned && e.State != Modified {
					// A modified pinned line is a held (or queued-behind)
					// lock, which is legal at quiescence; anything else
					// pinned is a leak.
					errs = append(errs, fmt.Errorf("node %v line %d pinned in state %s at quiescence",
						nd.id, e.Line, StateName(e.State)))
				}
			})
		}
	}

	// Visit lines in sorted order everywhere below: the error list is
	// compared textually by tests and counterexample reports, so its order
	// must not depend on map iteration.
	holderLines := make([]cache.Line, 0, len(holders))
	for line := range holders {
		holderLines = append(holderLines, line)
	}
	sort.Slice(holderLines, func(i, j int) bool { return holderLines[i] < holderLines[j] })
	sharerLines := make([]cache.Line, 0, len(sharers))
	for line := range sharers {
		sharerLines = append(sharerLines, line)
	}
	sort.Slice(sharerLines, func(i, j int) bool { return sharerLines[i] < sharerLines[j] })

	// 1: single holder; no sharers alongside a modified copy.
	for _, line := range holderLines {
		hs := holders[line]
		if len(hs) > 1 {
			errs = append(errs, fmt.Errorf("line %d modified in %d caches: %v and %v",
				line, len(hs), hs[0].id, hs[1].id))
		}
		if sh := sharers[line]; len(sh) > 0 {
			errs = append(errs, fmt.Errorf("line %d modified at %v but shared at %v", line, hs[0].id, sh))
		}
	}

	// 2 & 3: memory valid bits and shared-copy contents.
	checkLine := func(line cache.Line) {
		mem := s.mems[s.homeColumn(line)]
		_, isMod := holders[line]
		if isMod == mem.store.Valid(memory.Line(line)) {
			errs = append(errs, fmt.Errorf("line %d: modified=%v but memory valid=%v",
				line, isMod, mem.store.Valid(memory.Line(line))))
		}
		if !isMod {
			want := mem.store.Peek(memory.Line(line))
			for _, id := range sharers[line] {
				e, ok := s.Node(id).l2.Lookup(line)
				if !ok {
					continue
				}
				for i := range want {
					if e.Data[i] != want[i] {
						errs = append(errs, fmt.Errorf("line %d word %d: node %v has %d, memory has %d",
							line, i, id, e.Data[i], want[i]))
						break
					}
				}
			}
		}
	}
	seen := make(map[cache.Line]bool)
	for _, line := range holderLines {
		if !seen[line] {
			seen[line] = true
			checkLine(line)
		}
	}
	for _, line := range sharerLines {
		if !seen[line] {
			seen[line] = true
			checkLine(line)
		}
	}

	// 4: MLT column consistency and exactness.
	for c := 0; c < n; c++ {
		ref := s.nodes[0][c].table
		for r := 1; r < n; r++ {
			if !mlt.Equal(ref, s.nodes[r][c].table) {
				errs = append(errs, fmt.Errorf("column %d: MLTs of (0,%d) and (%d,%d) differ: %v vs %v",
					c, c, r, c, ref.Lines(), s.nodes[r][c].table.Lines()))
			}
		}
		want := make(map[mlt.Line]bool)
		for _, line := range holderLines {
			for _, h := range holders[line] {
				if h.id.Col == c {
					want[mlt.Line(line)] = true
				}
			}
		}
		got := make(map[mlt.Line]bool)
		gotKeys := ref.Lines() // already sorted by the table
		for _, l := range gotKeys {
			got[l] = true
		}
		wantKeys := make([]mlt.Line, 0, len(want))
		for l := range want {
			wantKeys = append(wantKeys, l)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		for _, l := range wantKeys {
			if !got[l] {
				errs = append(errs, fmt.Errorf("column %d: line %d modified in column but missing from MLT", c, l))
			}
		}
		for _, l := range gotKeys {
			if !want[l] {
				errs = append(errs, fmt.Errorf("column %d: MLT entry for line %d with no modified copy in column", c, l))
			}
		}
	}

	// 6: multilevel inclusion. Views are walked in registration order and
	// report their lines sorted, keeping the error list deterministic.
	for _, iv := range s.inclusions {
		nd := s.Node(iv.node)
		for _, line := range iv.lines() {
			if _, ok := nd.l2.Lookup(line); !ok {
				errs = append(errs, fmt.Errorf("%s: L1 line %d not in snooping cache at %v (inclusion violated)",
					iv.label, line, iv.node))
			}
		}
	}
	return errs
}

// inclusionView is one upper-level cache registered for the inclusion
// check.
type inclusionView struct {
	label string
	node  topology.Coord
	lines func() []cache.Line
}

// RegisterInclusion records an upper-level (write-through processor)
// cache in front of the snooping cache at node: CheckInvariants
// thereafter enforces that every line lines() reports is present
// non-invalid in that snooping cache. lines must report in a
// deterministic (sorted) order.
func (s *System) RegisterInclusion(label string, node topology.Coord, lines func() []cache.Line) {
	s.inclusions = append(s.inclusions, inclusionView{label: label, node: node, lines: lines})
}
