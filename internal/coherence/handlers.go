package coherence

import (
	"fmt"

	"multicube/internal/cache"
	"multicube/internal/mlt"
)

// probeRow implements the "modified line" signal: a special row bus line
// supplied (by at most one node) a fixed number of bus cycles after a
// request is placed on the bus, signifying that the desired line resides
// in mode modified in a cache on the asserting node's column.
func (n *Node) probeRow(op *Op) {
	if op.Flags.Has(REQUEST) && n.table.Contains(mlt.Line(op.Line)) {
		if n.sys.SuppressSignal != nil && n.sys.SuppressSignal(n.id, op) {
			op.suppressed = true
			return // injected fault: this controller stays silent
		}
		op.modified = true
		if !op.claimed {
			op.claimed = true
			op.claimant = n.id
		}
	}
}

// probeCol asserts the column-bus holder-present and will-serve signals
// for requests targeting a line this node holds.
func (n *Node) probeCol(op *Op) {
	if !op.Flags.Has(REQUEST | REMOVE) {
		return
	}
	e, ok := n.l2.Lookup(op.Line)
	if !ok {
		return
	}
	switch e.State {
	case Modified:
		op.holderPresent = true
		// A queue head with an admitted successor stays silent for every
		// transaction: serving a TAS/SYNC belongs to the tail, and
		// surrendering the modified copy to a READ or READMOD would
		// strand the queue — the handoff XFER needs the head's data and
		// link authority. Requests bounce and retry until the queue
		// drains. The pin disambiguates: the link word is protocol-owned
		// only while sync state is live (the admission pinned this copy);
		// on an ordinary data line word 1 is just data.
		if !e.Pinned || e.Data[LinkWord] == 0 {
			op.willServe = true
		}
	case Reserved:
		// An admitted queue tail answers (serving SYNC/TAS, or bouncing
		// READ/READMOD); a joiner whose admission is still in flight
		// stays silent.
		if e.Data[LinkWord] == 0 && n.isQueuedTailFor(op.Line) {
			op.willServe = true
		}
	}
}

// snoopRow dispatches a row bus operation. On a bus operation, all nodes
// on the bus, including the originator, execute the appropriate procedure.
func (n *Node) snoopRow(op *Op) {
	n.gen++
	switch {
	case op.Flags.Has(REQUEST):
		n.rowRequest(op)
	case op.Flags.Has(XFER):
		n.rowXfer(op)
	case op.Flags.Has(REPLY):
		n.rowReply(op)
	case op.Flags.Has(UPDATE):
		n.rowUpdate(op)
	case op.Flags.Has(PURGE):
		n.rowPurge(op)
	default:
		panic(fmt.Sprintf("coherence: node %v snooped unroutable row op %v", n.id, op))
	}
}

// snoopCol dispatches a column bus operation.
func (n *Node) snoopCol(op *Op) {
	n.gen++
	switch {
	case op.Flags.Has(REQUEST | REMOVE):
		n.colRequestRemove(op)
	case op.Flags.Has(REQUEST | MEMORY):
		// Destined for memory; controllers take no action.
	case op.Flags.Has(XFER):
		n.colXfer(op)
	case op.Flags.Has(REPLY):
		n.colReply(op)
	case op.Flags.Has(INSERT):
		n.tableInsert(op.Line, op.trace)
	case op.Flags.Has(REMOVE):
		n.colWritebackRemove(op)
	case op.Flags.Has(UPDATE | MEMORY):
		// Memory write; controllers take no action.
	default:
		panic(fmt.Sprintf("coherence: node %v snooped unroutable column op %v", n.id, op))
	}
}

/*
row bus request for data; the request is either forwarded to the column

	where it resides in global state modified or to the home column
*/
func (n *Node) rowRequest(op *Op) {
	line := op.Line
	if n.table.Contains(mlt.Line(line)) {
		if op.suppressed {
			// Injected fault (decided at probe time): discard the
			// request; the home column and the memory valid bit will
			// re-drive it.
			n.sys.dropped++
			return
		}
		if !op.claimed || op.claimant != n.id {
			// Another controller won the claim (its table also holds
			// the line — one of the two entries is stale and its REMOVE
			// is in flight): only the claimant forwards, so the request
			// is never duplicated.
			return
		}
		// Modified signal supplied in probeRow; forward onto my column.
		flags := REQUEST | REMOVE | (op.Flags & ALLOC)
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.sys.addrOp(op.Txn, flags, op.Origin, line, op.trace))
		return
	}
	if n.onHomeColumn(line) && !op.modified {
		if op.Txn == READ {
			if e, ok := n.l2.Lookup(line); ok && e.State == Shared {
				// The home-column controller has the line: it requests
				// the row bus and sends the data itself.
				data := append([]uint64(nil), e.Data...)
				n.issueRowAfter(n.sys.cfg.Timing.CacheLatency,
					n.dataOp(READ, REPLY, op.Origin, line, data, op.trace))
				return
			}
		}
		flags := REQUEST | MEMORY | (op.Flags & ALLOC)
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.sys.addrOp(op.Txn, flags, op.Origin, line, op.trace))
	}
}

/*
column bus request for modified data; removing the modified line table

	entry guarantees access to the data; losing requests are reissued
*/
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) colRequestRemove(op *Op) {
	removed := n.table.Remove(mlt.Line(op.Line))
	if !removed {
		// Lost race: the controller on the originator's row retransmits
		// the request on the row bus, where it is treated exactly as if
		// it were a new request (but destined for the original requester).
		if n.id.Row == op.Origin.Row {
			n.stats.Reissues++
			flags := REQUEST | (op.Flags & ALLOC)
			n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
				n.sys.addrOp(op.Txn, flags, op.Origin, op.Line, op.trace))
		}
		return
	}
	if !op.willServe {
		// The remove succeeded but no controller on this column can
		// answer right now (a queue admission in flight, a head with a
		// queued successor, or a stale entry): the controller on the
		// originator's row restores the entry and retransmits, keeping
		// both the request and the table consistent.
		if n.id.Row == op.Origin.Row {
			n.stats.Reissues++
			n.restoreTableEntry(op)
			flags := REQUEST | (op.Flags & ALLOC)
			n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
				n.sys.addrOp(op.Txn, flags, op.Origin, op.Line, op.trace))
		}
		return
	}
	e, ok := n.l2.Lookup(op.Line)
	if !ok {
		// Some other controller on this column holds the line.
		return
	}
	switch e.State {
	case Modified:
		// While the copy is pinned the link word is protocol-owned: a
		// nonzero link means a SYNC queue is active and this copy is its
		// head. The head serves nothing — the tail answers TAS/SYNC for
		// its own column, and giving the line away to a READ/READMOD
		// would strand the queued waiter (probeCol already kept willServe
		// down; this mirrors it at dispatch).
		if e.Pinned && e.Data[LinkWord] != 0 {
			return
		}
		switch op.Txn {
		case READ:
			n.serveReadFromModified(op, e)
		case READMOD:
			n.serveReadModFromModified(op, e)
		case TAS:
			n.serveTASFromModified(op, e)
		case SYNC:
			n.serveSyncAtHolder(op, e)
		}
	case Reserved:
		if !n.isQueuedTailFor(op.Line) || e.Data[LinkWord] != 0 {
			return
		}
		switch op.Txn {
		case SYNC:
			n.serveSyncAtHolder(op, e)
		case TAS:
			// A reserved copy means the queue is active: the lock is
			// certainly held.
			n.replyFail(op)
			n.restoreTableEntry(op)
		default:
			// The data is not here (reserved placeholder only), and a
			// same-column holder, if any, is the queue head and keeps
			// the line: restore the entry and retransmit; the request
			// retries until the queue drains.
			n.bounceOffReserved(op)
		}
	}
}

// serveReadFromModified supplies modified data for a READ: the holder
// fetches the data, changes its mode from modified to shared, and routes
// the data toward the requester with a memory update along the way.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) serveReadFromModified(op *Op, e *cache.Entry) {
	data := append([]uint64(nil), e.Data...)
	e.State = Shared
	// A sync-active pin guards the modified copy's queue authority; the
	// shared copy left behind has none, and must be victimizable again
	// (SyncRelease already handles the degenerated ownership).
	e.Pinned = false
	lat := n.sys.cfg.Timing.CacheLatency
	switch {
	case n.onHomeColumn(op.Line):
		n.issueColAfter(lat, n.dataOp(READ, REPLY|UPDATE|MEMORY, op.Origin, op.Line, data, op.trace))
	case n.id.Row == op.Origin.Row:
		n.issueRowAfter(lat, n.dataOp(READ, REPLY|UPDATE, op.Origin, op.Line, data, op.trace))
	default:
		n.issueColAfter(lat, n.dataOp(READ, REPLY|UPDATE, op.Origin, op.Line, data, op.trace))
	}
}

// serveReadModFromModified transfers ownership for a READMOD: the holder
// invalidates its copy and sends the line toward the requester's column.
// Main memory is not updated.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) serveReadModFromModified(op *Op, e *cache.Entry) {
	var data []uint64
	if !op.Flags.Has(ALLOC) {
		data = append([]uint64(nil), e.Data...)
	}
	n.l2.Invalidate(op.Line)
	n.notifyInvalidate(op.Line)
	n.stats.Invalidations++
	n.sendOwnership(op, data)
}

// sendOwnership routes an ownership-transfer reply (READMOD, TAS success,
// SYNC handover) from this holder to the requester. For ALLOC, data is
// nil and the reply is an acknowledgement.
func (n *Node) sendOwnership(op *Op, data []uint64) {
	lat := n.sys.cfg.Timing.CacheLatency
	alloc := op.Flags & ALLOC
	if n.id.Col == op.Origin.Col {
		n.issueColAfter(lat, n.replyOp(op.Txn, REPLY|INSERT|alloc, op.Origin, op.Line, data, op.trace))
		return
	}
	// Transmit on my row bus; the controller in the requester's column
	// picks it up and forwards it over its column bus.
	n.issueRowAfter(lat, n.replyOp(op.Txn, REPLY|alloc, op.Origin, op.Line, data, op.trace))
}

// bounceOffReserved handles a READ or READMOD routed to a column whose
// holder has only a reserved copy (a SYNC queue tail): the data is not
// here. The entry is restored and the request retransmitted; it will keep
// retrying until the queue drains and a modified copy exists. This is the
// "degenerates ... which guarantees correctness if not efficiency" path
// of Section 4.
func (n *Node) bounceOffReserved(op *Op) {
	n.stats.Deferred++
	n.restoreTableEntry(op)
	flags := REQUEST | (op.Flags & ALLOC)
	n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
		n.sys.addrOp(op.Txn, flags, op.Origin, op.Line, op.trace))
}

// restoreTableEntry re-inserts the modified line table entry that a
// REQUEST|REMOVE deleted, for requests the holder did not satisfy.
func (n *Node) restoreTableEntry(op *Op) {
	n.issueCol(n.sys.addrOp(op.Txn, INSERT, n.id, op.Line, op.trace))
}

/*
write the line to memory; if the modified line table remove operation

	fails then some other bus operation will remove the data; in either
	case signal the processor request to continue
*/
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) colWritebackRemove(op *Op) {
	removed := n.table.Remove(mlt.Line(op.Line))
	if op.Origin != n.id {
		return
	}
	if removed {
		if e, ok := n.l2.Lookup(op.Line); ok && e.State == Modified {
			data := append([]uint64(nil), e.Data...)
			if n.onHomeColumn(op.Line) {
				n.issueCol(n.dataOp(WRITEBACK, UPDATE|MEMORY, n.id, op.Line, data, op.trace))
			} else {
				n.issueRow(n.dataOp(WRITEBACK, UPDATE, n.id, op.Line, data, op.trace))
			}
		}
	} else if e, ok := n.l2.Lookup(op.Line); ok && e.State == Modified {
		// The entry was claimed by a request in flight, yet the line is
		// still here: the claimant was refused (a lock try that found the
		// lock set, a probe bounced off the queue) and the INSERT restoring
		// the entry is already on the bus behind us. Completing now would
		// demote this copy under a table entry that still names our column
		// — losing the only valid copy. Retry the remove until the race
		// resolves: either the restore lands first (the remove succeeds) or
		// a later claimant takes the line (nothing left to write).
		n.stats.Reissues++
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.sys.addrOp(WRITEBACK, REMOVE, n.id, op.Line, op.trace))
		return
	}
	cont := n.wbCont
	n.wbCont = nil
	if cont != nil {
		cont()
	}
}

/* forward the memory update request to the home column */
func (n *Node) rowUpdate(op *Op) {
	if n.onHomeColumn(op.Line) {
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.dataOp(op.Txn, UPDATE|MEMORY, op.Origin, op.Line, op.Data, op.trace))
	}
}

/*
row bus operation to purge all shared copies of a line; the home column

	data cache has already been purged
*/
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) rowPurge(op *Op) {
	n.poisonPendingRead(op.Line)
	if n.onHomeColumn(op.Line) {
		return
	}
	if e, ok := n.l2.Lookup(op.Line); ok && e.State == Shared {
		n.l2.Invalidate(op.Line)
		n.notifyInvalidate(op.Line)
		n.stats.Invalidations++
	}
}

// rowReply dispatches replies traveling on a row bus.
func (n *Node) rowReply(op *Op) {
	switch {
	case op.Flags.Has(FAIL):
		n.rowReplyFail(op)
	case op.Flags.Has(QUEUED):
		n.rowReplyQueued(op)
	case op.Txn == READ:
		n.rowReadReply(op)
	default:
		n.rowOwnershipReply(op)
	}
}

/*
row bus reply to a READ request (plain, or indicating that memory

	should be updated)
*/
func (n *Node) rowReadReply(op *Op) {
	if op.Origin == n.id {
		n.installShared(op)
	} else {
		n.snarf(op)
	}
	if op.Flags.Has(UPDATE) && n.onHomeColumn(op.Line) {
		// READ (ROW, REPLY, UPDATE): the home-column controller writes
		// the line back to memory.
		n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
			n.dataOp(op.Txn, UPDATE|MEMORY, op.Origin, op.Line, op.Data, op.trace))
	}
}

// rowOwnershipReply handles READMOD/TAS/SYNC replies on a row bus.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) rowOwnershipReply(op *Op) {
	switch {
	case op.Flags.Has(PURGE):
		/* row bus reply to a READMOD request also indicating that all
		   shared copies of the line should be purged on the row; the
		   home column data cache has already been purged */
		if op.Origin == n.id {
			n.issueCol(n.sys.addrOp(op.Txn, INSERT, op.Origin, op.Line, op.trace))
			n.installOwned(op)
		} else {
			n.poisonPendingRead(op.Line)
			if !n.onHomeColumn(op.Line) {
				if e, ok := n.l2.Lookup(op.Line); ok && e.State == Shared {
					n.l2.Invalidate(op.Line)
					n.notifyInvalidate(op.Line)
					n.stats.Invalidations++
				}
			}
		}
	default:
		/* row bus reply to a READMOD request */
		if op.Origin == n.id {
			n.issueCol(n.sys.addrOp(op.Txn, INSERT, op.Origin, op.Line, op.trace))
			n.installOwned(op)
		} else if n.id.Col == op.Origin.Col {
			n.issueColAfter(n.sys.cfg.Timing.ForwardLatency,
				n.replyOp(op.Txn, REPLY|INSERT|(op.Flags&ALLOC), op.Origin, op.Line, op.Data, op.trace))
		}
	}
}

// colReply dispatches replies traveling on a column bus.
func (n *Node) colReply(op *Op) {
	switch {
	case op.Flags.Has(FAIL):
		n.colReplyFail(op)
	case op.Flags.Has(QUEUED):
		n.colReplyQueued(op)
	case op.Txn == READ:
		n.colReadReply(op)
	default:
		n.colOwnershipReply(op)
	}
}

// colReadReply handles the three READ reply forms on a column bus.
func (n *Node) colReadReply(op *Op) {
	switch {
	case op.Flags.Has(UPDATE | MEMORY):
		/* column bus reply to a READ request indicating that the memory
		   on this column should be updated */
		if op.Origin == n.id {
			n.installShared(op)
		} else {
			n.snarf(op)
			if n.id.Row == op.Origin.Row {
				n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
					n.sys.forwardOp(op, REPLY, op.trace))
			}
		}
	case op.Flags.Has(UPDATE):
		/* column bus reply to a READ request indicating that memory
		   should be updated */
		if op.Origin == n.id {
			n.installShared(op)
			n.issueRow(n.dataOp(READ, UPDATE, op.Origin, op.Line, op.Data, op.trace))
		} else {
			n.snarf(op)
			if n.id.Row == op.Origin.Row {
				n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
					n.sys.forwardOp(op, REPLY|UPDATE, op.trace))
			}
		}
	case op.Flags.Has(NOPURGE):
		/* column bus reply from memory to a READ request; no purge is
		   required for a READ transaction */
		if op.Origin == n.id {
			n.installShared(op)
		} else {
			n.snarf(op)
			if n.id.Row == op.Origin.Row {
				n.issueRowAfter(n.sys.cfg.Timing.ForwardLatency,
					n.sys.forwardOp(op, REPLY, op.trace))
			}
		}
	default:
		panic(fmt.Sprintf("coherence: node %v snooped unroutable READ column reply %v", n.id, op))
	}
}

// colOwnershipReply handles READMOD/TAS/SYNC replies on a column bus.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) colOwnershipReply(op *Op) {
	switch {
	case op.Flags.Has(INSERT):
		/* column bus reply to a READMOD request indicating that an entry
		   should be inserted into the modified line table */
		if op.Origin == n.id {
			n.installOwned(op)
		}
		n.tableInsert(op.Line, op.trace)
	case op.Flags.Has(PURGE):
		/* column bus reply from memory to a READMOD request; a purge of
		   all copies of the line is required; the data cache on the home
		   column must be purged first */
		if op.Origin == n.id {
			n.issueCol(n.sys.addrOp(op.Txn, INSERT, op.Origin, op.Line, op.trace))
			n.issueRow(n.sys.addrOp(op.Txn, PURGE, op.Origin, op.Line, op.trace))
			n.installOwned(op)
			return
		}
		n.poisonPendingRead(op.Line)
		if e, ok := n.l2.Lookup(op.Line); ok && e.State == Shared {
			n.l2.Invalidate(op.Line)
			n.notifyInvalidate(op.Line)
			n.stats.Invalidations++
		}
		fwd := n.sys.cfg.Timing.ForwardLatency
		if n.id.Row == op.Origin.Row {
			n.issueRowAfter(fwd, n.replyOp(op.Txn, REPLY|PURGE|(op.Flags&ALLOC), op.Origin, op.Line, op.Data, op.trace))
		} else {
			n.issueRowAfter(fwd, n.sys.addrOp(op.Txn, PURGE, op.Origin, op.Line, op.trace))
		}
	default:
		panic(fmt.Sprintf("coherence: node %v snooped unroutable ownership column reply %v", n.id, op))
	}
}

// installShared writes the pending READ's line in shared mode and
// completes the transaction. If an invalidating broadcast overtook the
// reply, the data is stale: discard it and retry the request instead.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) installShared(op *Op) {
	if !n.matchesPending(op) {
		n.shard.strays++
		return
	}
	if n.pend.poisoned {
		n.pend.poisoned = false
		n.stats.Reissues++
		n.issueRow(n.sys.addrOp(n.pend.txn, REQUEST|n.pend.flags, n.id, n.pend.line, n.pend.trace))
		return
	}
	n.writeLine(op.Line, Shared, op.Data)
	n.complete(op, Result{})
}

// isQueuedTailFor reports whether this node's reserved copy of line is an
// admitted member (and thus tail) of the line's SYNC queue.
func (n *Node) isQueuedTailFor(line cache.Line) bool {
	return n.pend != nil && n.pend.txn == SYNC && n.pend.line == line && n.pend.queued
}

// poisonPendingRead marks an outstanding READ for line whose reply may now
// deliver stale data.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) poisonPendingRead(line cache.Line) {
	if n.sys.DisableStaleReplyPoisoning {
		return // test hook: reproduce the protocol gap of DESIGN.md §5.6a
	}
	if n.pend != nil && n.pend.txn == READ && n.pend.line == line {
		n.pend.poisoned = true
	}
}

// installOwned writes the pending request's line in modified mode
// (merging into a reserved copy for SYNC, zero-filling for ALLOCATE) and
// completes the transaction.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) installOwned(op *Op) {
	if !n.matchesPending(op) {
		if op.Data != nil && op.Txn != READ {
			// An ownership transfer nobody is waiting for would lose the
			// only copy of the data: a protocol bug, not a race.
			panic(fmt.Sprintf("coherence: node %v received unclaimed ownership reply %v", n.id, op))
		}
		n.shard.strays++
		return
	}
	switch {
	case op.Txn == SYNC:
		e := n.l2.Probe(op.Line)
		if e == nil || e.State != Reserved {
			panic(fmt.Sprintf("coherence: node %v SYNC reply without reserved copy for line %d", n.id, op.Line))
		}
		myLink := e.Data[LinkWord]
		copy(e.Data, op.Data)
		e.Data[LinkWord] = myLink
		e.State = Modified
		// Stay pinned while sync-active; SyncRelease unpins.
	case op.Flags.Has(ALLOC):
		n.writeLine(op.Line, Modified, nil)
	default:
		n.writeLine(op.Line, Modified, op.Data)
	}
	n.complete(op, Result{Acquired: op.Txn == TAS || op.Txn == SYNC})
}

// snarf acquires a passing unmodified line into a retained-tag slot in
// shared mode (Section 3), when enabled.
//
//multicube:fpexempt dispatched under snoopRow/snoopCol, which bump
func (n *Node) snarf(op *Op) {
	if !n.snarfEligible(op) {
		return
	}
	e := n.l2.Probe(op.Line)
	copy(e.Data, op.Data)
	e.State = Shared
	n.l2.MarkSnarf()
}
