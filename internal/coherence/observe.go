package coherence

import (
	"multicube/internal/cache"
	"multicube/internal/mlt"
	"multicube/internal/topology"
)

// This file is the conformance-observation seam: a passive hook that
// reports every controller transition — the snooped bus operation, the
// controller-local state before and after, and the bus operations the
// handler scheduled in response — to an external observer. The spec
// tables of internal/protocol replay these events against the paper's
// guarded-action rules.
//
// The seam is deliberately inert: it allocates and copies only when an
// Observer is installed, never mutates protocol state, and is invisible
// to fingerprints (like OpLog). Explorer verdicts are identical with and
// without it.

// LineView is a controller-local snapshot of everything bearing on one
// line: the snooping-cache entry, the replicated modified-line-table
// membership, the outstanding processor request, and the writeback
// continuation.
type LineView struct {
	// State is the snooping-cache mode of the line (Invalid if absent).
	State  cache.State
	Pinned bool
	// MLTHas reports modified-line-table membership at this node.
	MLTHas bool
	// LockWord and LinkWord are the synchronization words of the cached
	// copy; zero when the line is absent.
	LockWord uint64
	LinkWord uint64
	// HasPend and the Pend* fields describe the one outstanding
	// processor transaction, if any.
	HasPend      bool
	PendTxn      Txn
	PendFlags    Flags
	PendLine     cache.Line
	PendPoisoned bool
	PendQueued   bool
	// PendMatches reports that the outstanding transaction matches the
	// observed operation's (Txn, Line) — the reply-acceptance test.
	PendMatches bool
	// WBCont reports an outstanding writeback continuation.
	WBCont bool
}

// ActionIntent is one bus operation a handler scheduled while snooping:
// either issued immediately or enqueued behind a device latency.
type ActionIntent struct {
	Dim    Dim
	Txn    Txn
	Flags  Flags
	Line   cache.Line
	Target topology.Coord
	// HasData distinguishes data-carrying operations from
	// address-and-command ones.
	HasData bool
}

// SnoopEvent is one observed controller transition: node identity, the
// delivered operation (with its probe-phase wire signals as latched at
// delivery), the before/after line views, and the scheduled actions.
type SnoopEvent struct {
	Node topology.Coord
	Dim  Dim

	// The operation's bus fields.
	Txn     Txn
	Flags   Flags
	Line    cache.Line
	Origin  topology.Coord
	Target  topology.Coord
	HasData bool

	// Home reports that Node sits on Line's home column.
	Home bool

	// Probe-phase wire signals.
	Modified      bool
	ClaimantSelf  bool
	Suppressed    bool
	HolderPresent bool
	WillServe     bool

	// Snarfable reports that the snarf optimization could capture this
	// operation's payload at this node (a pre-state property: enabled,
	// READ data, retained invalid tag, payload newer than the last
	// purge).
	Snarfable bool

	Before LineView
	After  LineView

	Actions []ActionIntent
}

// lineView builds the controller-local view of op's line.
func (n *Node) lineView(op *Op) LineView {
	v := LineView{MLTHas: n.table.Contains(mlt.Line(op.Line)), WBCont: n.wbCont != nil}
	if e, ok := n.l2.Lookup(op.Line); ok {
		v.State = e.State
		v.Pinned = e.Pinned
		v.LockWord = e.Data[LockWord]
		v.LinkWord = e.Data[LinkWord]
	}
	if p := n.pend; p != nil {
		v.HasPend = true
		v.PendTxn = p.txn
		v.PendFlags = p.flags
		v.PendLine = p.line
		v.PendPoisoned = p.poisoned
		v.PendQueued = p.queued
		v.PendMatches = p.line == op.Line && p.txn == op.Txn
	}
	return v
}

// observeSnoop runs dispatch with the action-intent sink armed and
// reports the transition to the installed Observer.
func (n *Node) observeSnoop(dim Dim, op *Op, dispatch func()) {
	s := n.sys
	ev := SnoopEvent{
		Node:          n.id,
		Dim:           dim,
		Txn:           op.Txn,
		Flags:         op.Flags,
		Line:          op.Line,
		Origin:        op.Origin,
		Target:        op.Target,
		HasData:       op.Data != nil,
		Home:          n.onHomeColumn(op.Line),
		Modified:      op.modified,
		ClaimantSelf:  op.claimed && op.claimant == n.id,
		Suppressed:    op.suppressed,
		HolderPresent: op.holderPresent,
		WillServe:     op.willServe,
		Snarfable:     n.snarfEligible(op),
		Before:        n.lineView(op),
	}
	prev := s.obsSink
	s.obsSink = &ev.Actions
	dispatch()
	s.obsSink = prev
	ev.After = n.lineView(op)
	s.Observer(ev)
}

// recordIntent appends one scheduled bus operation to the active snoop
// window's event, if any. Called from the issue helpers; outside a snoop
// window the sink is nil and this is a no-op.
func (s *System) recordIntent(dim Dim, op *Op) {
	if s.obsSink == nil {
		return
	}
	*s.obsSink = append(*s.obsSink, ActionIntent{
		Dim:     dim,
		Txn:     op.Txn,
		Flags:   op.Flags,
		Line:    op.Line,
		Target:  op.Target,
		HasData: op.Data != nil,
	})
}

// snarfEligible reports whether snarf would capture op's payload at this
// node; snarf itself and the conformance observer share the predicate so
// the spec cannot drift from the implementation.
func (n *Node) snarfEligible(op *Op) bool {
	if !n.sys.cfg.Snarf || op.Txn != READ || op.Data == nil {
		return false
	}
	e := n.l2.Probe(op.Line)
	if e == nil || e.State != Invalid || e.Pinned {
		return false
	}
	if t, ok := n.purgedAt[op.Line]; ok && op.born <= t {
		// The payload predates our invalidation of this line: it may be
		// stale ("only if the line is in global state unmodified").
		return false
	}
	return true
}
