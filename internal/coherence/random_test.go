package coherence

import (
	"fmt"
	"testing"

	"multicube/internal/cache"
	"multicube/internal/sim"
	"multicube/internal/topology"
)

// splitmix64 is the deterministic PRNG used across the repository's
// randomized tests.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// runRandomWorkload drives every node through opsPerNode random reads and
// writes over a small set of hot lines, all nodes concurrently, and
// returns the final simulated time. Writes deposit unique values; reads
// verify they only ever observe deposited values (or zero).
func runRandomWorkload(t *testing.T, k *sim.Kernel, s *System, seed uint64, opsPerNode, lines int) sim.Time {
	t.Helper()
	written := map[uint64]bool{0: true}
	nextVal := uint64(1)
	n := s.Config().N

	var launch func(nd *Node, rng *splitmix64, remaining int)
	launch = func(nd *Node, rng *splitmix64, remaining int) {
		if remaining == 0 {
			return
		}
		line := cache.Line(rng.intn(lines))
		think := sim.Time(rng.intn(2000))
		k.After(think, func() {
			if rng.intn(2) == 0 {
				nd.Read(line, func(Result) {
					e := nd.CacheEntry(line)
					if e == nil {
						t.Errorf("node %v: line %d missing after read", nd.ID(), line)
					} else if !written[e.Data[2]] {
						t.Errorf("node %v read unwritten value %d from line %d", nd.ID(), e.Data[2], line)
					}
					launch(nd, rng, remaining-1)
				})
			} else {
				v := nextVal
				nextVal++
				written[v] = true
				nd.Write(line, func(Result) {
					e := nd.CacheEntry(line)
					if e == nil || e.State != Modified {
						t.Errorf("node %v: line %d not modified after write", nd.ID(), line)
					} else {
						e.Data[2] = v
					}
					launch(nd, rng, remaining-1)
				})
			}
		})
	}

	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			rng := splitmix64(seed ^ uint64(r*131+c*17+1))
			launch(s.Node(topology.Coord{Row: r, Col: c}), &rng, opsPerNode)
		}
	}
	return k.Run()
}

func TestRandomWorkloadInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			k, s := testSystem(t, 4)
			runRandomWorkload(t, k, s, seed, 25, 6)
			checkQuiet(t, s)
		})
	}
}

func TestRandomWorkloadBoundedCachesAndTables(t *testing.T) {
	// The same storm with tight caches and tables: every structural
	// corner (victim writebacks, MLT overflows, retained tags) is in
	// play, and the invariants must still hold.
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			k, s := testSystem(t, 4, func(c *Config) {
				c.CacheLines = 4
				c.CacheAssoc = 2
				c.MLTEntries = 2
				c.MLTAssoc = 1
				c.Snarf = true
			})
			runRandomWorkload(t, k, s, seed, 25, 6)
			checkQuiet(t, s)
		})
	}
}

func TestRandomWorkloadDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64, string) {
		k, s := testSystem(t, 3)
		end := runRandomWorkload(t, k, s, 42, 30, 5)
		// Fingerprint the final cache states.
		fp := ""
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				nd := s.Node(topology.Coord{Row: r, Col: c})
				nd.Cache().ForEach(func(e *cache.Entry) {
					fp += fmt.Sprintf("(%d,%d)%d:%d:%d;", r, c, e.Line, e.State, e.Data[2])
				})
			}
		}
		return end, k.Executed(), fp
	}
	t1, e1, f1 := run()
	t2, e2, f2 := run()
	if t1 != t2 || e1 != e2 || f1 != f2 {
		t.Fatalf("nondeterministic run: (%v,%d) vs (%v,%d)\n%s\nvs\n%s", t1, e1, t2, e2, f1, f2)
	}
}

func TestRandomLockStorm(t *testing.T) {
	// Every node repeatedly acquires and releases one SYNC lock,
	// incrementing a counter word under mutual exclusion. The final count
	// must equal the total number of critical sections.
	k, s := testSystem(t, 3)
	line := cache.Line(4)
	const perNode = 10
	n := s.Config().N
	total := 0

	var acquire func(nd *Node, rng *splitmix64, remaining int)
	var critical func(nd *Node, rng *splitmix64, remaining int)
	acquire = func(nd *Node, rng *splitmix64, remaining int) {
		if remaining == 0 {
			return
		}
		k.After(sim.Time(rng.intn(3000)), func() {
			nd.SyncAcquire(line, func(r Result) {
				if r.MustSpin {
					// Fall back to spinning test-and-set.
					var spin func()
					spin = func() {
						nd.TestAndSet(line, func(tr Result) {
							if tr.Acquired {
								critical(nd, rng, remaining)
								return
							}
							k.After(500, spin)
						})
					}
					spin()
					return
				}
				if !r.Acquired {
					t.Errorf("node %v: unexpected acquire result %+v", nd.ID(), r)
					return
				}
				critical(nd, rng, remaining)
			})
		})
	}
	critical = func(nd *Node, rng *splitmix64, remaining int) {
		e := nd.CacheEntry(line)
		if e == nil || e.State != Modified {
			t.Errorf("node %v in critical section without modified line", nd.ID())
			return
		}
		e.Data[3]++ // the protected counter
		total++
		k.After(sim.Time(rng.intn(1000)), func() {
			if !nd.SyncRelease(line) {
				t.Errorf("node %v: release degenerated", nd.ID())
				return
			}
			acquire(nd, rng, remaining-1)
		})
	}

	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			rng := splitmix64(uint64(r*31 + c*7 + 99))
			acquire(s.Node(topology.Coord{Row: r, Col: c}), &rng, perNode)
		}
	}
	k.Run()
	if total != n*n*perNode {
		t.Fatalf("completed %d critical sections, want %d", total, n*n*perNode)
	}
	// Find the final holder and verify the counter.
	found := false
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			nd := s.Node(topology.Coord{Row: r, Col: c})
			if e, ok := nd.Cache().Lookup(line); ok && e.State == Modified {
				found = true
				if e.Data[3] != uint64(total) {
					t.Errorf("counter = %d, want %d", e.Data[3], total)
				}
			}
		}
	}
	if !found {
		t.Error("no final holder of the lock line")
	}
	checkQuiet(t, s)
}
