// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the heartbeat of every machine model in this repository:
// buses, caches, memories and processors all advance by scheduling closures
// at future points in simulated time. Events with equal timestamps are
// executed in scheduling order (a strictly increasing sequence number breaks
// ties), so a run is reproducible bit-for-bit given the same inputs.
//
// Simulated processors that are written as ordinary Go code (the examples
// in this repository run real programs against the simulated memory) attach
// to the kernel through a Proc, which alternates control between the
// program goroutine and the kernel so that no two goroutines ever touch
// kernel state concurrently. Determinism is preserved because at most one
// goroutine runs at a time.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time uint64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%d.%03ds", t/Second, (t%Second)/Millisecond)
	case t >= Millisecond:
		return fmt.Sprintf("%d.%03dms", t/Millisecond, (t%Millisecond)/Microsecond)
	case t >= Microsecond:
		return fmt.Sprintf("%d.%03dus", t/Microsecond, (t%Microsecond)/Nanosecond)
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event scheduler.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc

	// executed counts events dispatched, for diagnostics and tests.
	executed uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.events)
	return k
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.events) }

// Executed reports the total number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a modeling bug.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Step dispatches the single earliest event. It reports false when no
// events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.executed++
	e.fn()
	return true
}

// Run dispatches events until none remain and returns the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of simulated time.
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }
