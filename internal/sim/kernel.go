// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the heartbeat of every machine model in this repository:
// buses, caches, memories and processors all advance by scheduling closures
// at future points in simulated time. Events with equal timestamps are
// executed in scheduling order (a strictly increasing sequence number breaks
// ties), so a run is reproducible bit-for-bit given the same inputs.
//
// Simulated processors that are written as ordinary Go code (the examples
// in this repository run real programs against the simulated memory) attach
// to the kernel through a Proc, which alternates control between the
// program goroutine and the kernel so that no two goroutines ever touch
// kernel state concurrently. Determinism is preserved because at most one
// goroutine runs at a time.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package sim

import (
	"fmt"
	"sort"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time uint64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%d.%03ds", t/Second, (t%Second)/Millisecond)
	case t >= Millisecond:
		return fmt.Sprintf("%d.%03dms", t/Millisecond, (t%Millisecond)/Microsecond)
	case t >= Microsecond:
		return fmt.Sprintf("%d.%03dus", t/Microsecond, (t%Microsecond)/Nanosecond)
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
	// tag optionally identifies the event for model checking: choice
	// enumeration, state fingerprinting and counterexample rendering.
	tag any
}

// eventHeap is a binary min-heap on (at, seq) with hand-written sift
// functions: the container/heap interface boxes every event into an
// interface value on Push and Pop, and under a model checker the kernel
// pushes and pops millions of events.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old.Swap(0, n)
	e := old[n]
	old[n] = event{}
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	return e
}

// remove deletes the element at index i, preserving the heap order.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.Swap(i, n)
	}
	old[n] = event{}
	*h = old[:n]
	if i < n {
		if !(*h).down(i) {
			(*h).up(i)
		}
	}
}

func (h eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h eventHeap) down(i0 int) bool {
	i := i0
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
	return i > i0
}

// Kernel is a single-threaded discrete-event scheduler.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc

	// chooser, when set, resolves dispatch order among candidate events;
	// nil keeps the historical (time, sequence) order with zero overhead.
	chooser Chooser
	// allEvents widens the candidate set from "events sharing the
	// earliest timestamp" to every pending event — the untimed
	// interpretation a protocol model checker wants, where a message may
	// take arbitrarily long and any pending action can happen next.
	allEvents bool

	// executed counts events dispatched, for diagnostics and tests.
	executed uint64

	// scratch buffers reused by stepChosen, which runs once per kernel
	// step under a model checker and must not allocate.
	ordered eventHeap
	cands   []Candidate
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.events) }

// Executed reports the total number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a modeling bug.
func (k *Kernel) At(t Time, fn func()) { k.AtTagged(t, nil, fn) }

// AtTagged is At with a scheduling tag attached to the event, identifying
// it to a Chooser and to state-fingerprinting code.
func (k *Kernel) AtTagged(t Time, tag any, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn, tag: tag})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// AfterTagged is After with a scheduling tag.
func (k *Kernel) AfterTagged(d Time, tag any, fn func()) { k.AtTagged(k.now+d, tag, fn) }

// SetChooser routes event dispatch order through ch (nil restores the
// default order). With allEvents false, only events sharing the earliest
// timestamp are offered — a tie-break refinement that preserves the
// timing model. With allEvents true, every pending event is a candidate:
// the untimed interpretation under which a model checker explores all
// message orderings regardless of latency constants; dispatching a later
// event advances the clock past it, so time stays monotonic.
func (k *Kernel) SetChooser(ch Chooser, allEvents bool) {
	k.chooser = ch
	k.allEvents = allEvents
}

// ForEachPending visits every pending event's (time, tag) in scheduling
// order. Model checkers include the pending set in state fingerprints.
func (k *Kernel) ForEachPending(fn func(at Time, tag any)) {
	ordered := append(eventHeap(nil), k.events...)
	sort.Slice(ordered, func(i, j int) bool { return ordered.Less(i, j) })
	for _, e := range ordered {
		fn(e.at, e.tag)
	}
}

// ForEachPendingTag visits every pending event's tag in arbitrary
// (heap) order without allocating. Callers that need a deterministic
// combination must make their per-event contribution order-insensitive,
// e.g. by sorting derived hashes.
func (k *Kernel) ForEachPendingTag(fn func(tag any)) {
	for i := range k.events {
		fn(k.events[i].tag)
	}
}

// Step dispatches one event — the single earliest, or the chooser's pick
// among the candidate set when a Chooser is installed. It reports false
// when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	if k.chooser == nil {
		e := k.events.pop()
		k.now = e.at
		k.executed++
		e.fn()
		return true
	}
	return k.stepChosen()
}

// stepChosen dispatches via the chooser. Candidates are presented in
// (time, sequence) order, so choice 0 is exactly the event the default
// path would dispatch.
func (k *Kernel) stepChosen() bool {
	ordered := append(k.ordered[:0], k.events...)
	sortEvents(ordered)
	k.ordered = ordered
	n := len(ordered)
	if !k.allEvents {
		n = 1
		for n < len(ordered) && ordered[n].at == ordered[0].at {
			n++
		}
	}
	idx := 0
	if n > 1 {
		cands := k.cands[:0]
		for _, e := range ordered[:n] {
			cands = append(cands, Candidate{Tag: e.tag})
		}
		k.cands = cands
		idx = k.chooser.Choose(ChoicePoint{Kind: "sched"}, cands)
		if idx < 0 || idx >= n {
			panic(fmt.Sprintf("sim: chooser picked %d of %d candidates", idx, n))
		}
	}
	e := ordered[idx]
	for i := range k.events {
		if k.events[i].seq == e.seq {
			k.events.remove(i)
			break
		}
	}
	if e.at > k.now {
		k.now = e.at
	}
	if obs, ok := k.chooser.(DispatchObserver); ok {
		obs.Dispatched(e.tag)
	}
	k.executed++
	e.fn()
	return true
}

// sortEvents orders the scratch copy by (at, seq) without the
// interface boxing of sort.Sort: candidate sets are small, so an
// insertion sort wins and allocates nothing.
func sortEvents(evs []event) {
	for i := 1; i < len(evs); i++ {
		e := evs[i]
		j := i
		for j > 0 && (e.at < evs[j-1].at || (e.at == evs[j-1].at && e.seq < evs[j-1].seq)) {
			evs[j] = evs[j-1]
			j--
		}
		evs[j] = e
	}
}

// Run dispatches events until none remain and returns the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of simulated time.
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }
