// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the heartbeat of every machine model in this repository:
// buses, caches, memories and processors all advance by scheduling closures
// at future points in simulated time. Events with equal timestamps are
// executed in scheduling order (a strictly increasing sequence number breaks
// ties), so a run is reproducible bit-for-bit given the same inputs.
//
// Simulated processors that are written as ordinary Go code (the examples
// in this repository run real programs against the simulated memory) attach
// to the kernel through a Proc, which alternates control between the
// program goroutine and the kernel so that no two goroutines ever touch
// kernel state concurrently. Determinism is preserved because at most one
// goroutine runs at a time.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package sim

import (
	"fmt"
	"sort"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time uint64

// Common durations, for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%d.%03ds", t/Second, (t%Second)/Millisecond)
	case t >= Millisecond:
		return fmt.Sprintf("%d.%03dms", t/Millisecond, (t%Millisecond)/Microsecond)
	case t >= Microsecond:
		return fmt.Sprintf("%d.%03dus", t/Microsecond, (t%Microsecond)/Nanosecond)
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

// Never is a Time later than every reachable simulation instant; it is
// the "no constraint" value for event bounds.
const Never Time = ^Time(0)

// Birth identifies when an event was scheduled: the simulated time of
// the scheduling context and the composite slot of this scheduling call
// within it (see subBits). The parallel runner combines it with the
// scheduler's lineage to reconstruct the sequential kernel's global
// scheduling order exactly. Zero outside parallel mode.
type Birth struct {
	At  Time
	Idx uint64
}

// Composite Birth indices: the high bits are the scheduling slot within
// the executing event, the low subBits are consumed only by actions a
// Runner.Defer resumed at a boundary, which slot their children between
// the parent's own slots exactly where the action would have scheduled
// them had it run inline (sequential semantics).
const (
	subBits = 16
	subMask = 1<<subBits - 1
)

// lineage is one node of the scheduling genealogy the parallel runner
// maintains: the birth stamp of a dispatched event plus a pointer to the
// lineage of the event that scheduled it (nil for setup code). Two
// same-instant events order exactly as the sequential kernel's global
// sequence numbers would order them by comparing (birth time, scheduler
// lineage, birth slot) — see cmpLin. Nodes are created lazily, only for
// events that schedule children, and become garbage as soon as no
// pending event descends from them; chains stay short in practice
// because a chain only grows while consecutive ancestors avoid the
// global kernel.
type lineage struct {
	bAt    Time
	idx    uint64
	parent *lineage
}

// cmpLin orders two scheduler lineages like the sequential kernel orders
// the corresponding events' global sequence numbers: an event scheduled
// at an earlier instant has the smaller sequence; at equal instants the
// schedulers' own dispatch order decides (recursively, grounded at setup
// order); same scheduler falls to the slot index. nil (setup) precedes
// every dispatched scheduler because setup runs before time starts.
// Recursion depth is bounded by the equal-birth-time prefix of the two
// chains, which the differential sweep keeps honest.
func cmpLin(a, b *lineage) int {
	if a == b {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	if a.bAt != b.bAt {
		if a.bAt < b.bAt {
			return -1
		}
		return 1
	}
	if c := cmpLin(a.parent, b.parent); c != 0 {
		return c
	}
	if a.idx != b.idx {
		if a.idx < b.idx {
			return -1
		}
		return 1
	}
	return 0
}

// birthClock stamps scheduling calls and remembers which event is
// currently executing (the parent of anything scheduled now). A kernel
// dispatching an event points the clock at that event; every schedule
// call on a kernel sharing the clock takes the next slot. The parallel
// runner points all kernels at one clock during its coordinator phases
// so siblings scheduled by one parent event onto different kernels stay
// mutually ordered; during windows each partition stamps from its own
// clock. Slot counters need not be comparable across clocks: slots are
// only ever compared between children of one parent event, which are
// stamped by one clock.
type birthClock struct {
	at   Time
	slot uint64
	// The executing event's identity: its birth stamp and its scheduler's
	// lineage. node caches the lazily created lineage handed to children.
	active bool
	node   *lineage
	evAt   Time
	evIdx  uint64
	evPar  *lineage
	// Resume context: a boundary re-executing a deferred send slots the
	// send's children under the original parent at the send's reserved
	// composite index (see Runner.Defer).
	resume    bool
	resumeIdx uint64
	sub       uint64
	// slab bump-allocates lineage nodes in chunks: the clock mints about
	// one node per dispatched event with children, and chunked allocation
	// roughly halves the allocator traffic of parallel mode. A chunk is
	// collected once no pending event's lineage chain reaches into it;
	// chains stay short (see lineage), so retention stays bounded.
	slab []lineage
}

// beginEvent retargets the clock at a newly dispatched event. The slot
// counter continues across events dispatched at the same instant; it
// resets with the instant only to stay small.
func (c *birthClock) beginEvent(e *event) {
	if c.at != e.at {
		c.at, c.slot = e.at, 0
	}
	c.active, c.node = true, nil
	c.evAt, c.evIdx, c.evPar = e.birth.At, e.birth.Idx, e.parent
	c.resume = false
}

// beginResume points the clock at a deferred send being re-executed at a
// boundary: children stamp under the send's original parent lineage at
// the send's reserved slot, reproducing inline execution order.
func (c *birthClock) beginResume(at Time, parent *lineage, idx uint64) {
	if c.at != at {
		c.at, c.slot = at, 0
	}
	c.active, c.node = true, parent
	c.resume, c.resumeIdx, c.sub = true, idx, 0
}

// endResume deactivates the clock after a resumed send returns.
func (c *birthClock) endResume() {
	c.active, c.node, c.resume = false, nil, false
}

// parentNode returns the executing event's lineage, creating it on first
// use; nil when no event is executing (setup code).
func (c *birthClock) parentNode() *lineage {
	if !c.active {
		return nil
	}
	if c.node == nil {
		if len(c.slab) == cap(c.slab) {
			c.slab = make([]lineage, 0, 512)
		}
		c.slab = append(c.slab, lineage{bAt: c.evAt, idx: c.evIdx, parent: c.evPar})
		c.node = &c.slab[len(c.slab)-1]
	}
	return c.node
}

// stamp assigns the next birth stamp and the scheduler lineage for one
// scheduling call.
func (c *birthClock) stamp() (Birth, *lineage) {
	if c.resume {
		c.sub++
		if c.sub > subMask {
			panic("sim: deferred send scheduled too many events")
		}
		return Birth{At: c.at, Idx: c.resumeIdx | c.sub}, c.node
	}
	b := Birth{At: c.at, Idx: c.slot << subBits}
	c.slot++
	return b, c.parentNode()
}

type event struct {
	at  Time
	seq uint64
	fn  func()
	// tag optionally identifies the event for model checking: choice
	// enumeration, state fingerprinting and counterexample rendering.
	tag any
	// bound is the earliest simulated time at which this event — or any
	// event it transitively schedules — may take an action visible
	// outside its partition (see AtBounded). It is meaningful only under
	// the parallel runner; the default, bound == at, declares the event
	// itself unsafe.
	bound Time
	// birth records when the event was scheduled and parent the lineage
	// of the event that scheduled it (parallel mode only). Together they
	// reconstruct the full scheduling genealogy, which is what the
	// parallel runner's deterministic merge compares.
	birth  Birth
	parent *lineage
}

// eventHeap is a binary min-heap on (at, seq) with hand-written sift
// functions: the container/heap interface boxes every event into an
// interface value on Push and Pop, and under a model checker the kernel
// pushes and pops millions of events.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old.Swap(0, n)
	e := old[n]
	old[n] = event{}
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	return e
}

// remove deletes the element at index i, preserving the heap order.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.Swap(i, n)
	}
	old[n] = event{}
	*h = old[:n]
	if i < n {
		if !(*h).down(i) {
			(*h).up(i)
		}
	}
}

func (h eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h eventHeap) down(i0 int) bool {
	i := i0
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
	return i > i0
}

// Kernel is a single-threaded discrete-event scheduler.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc

	// chooser, when set, resolves dispatch order among candidate events;
	// nil keeps the historical (time, sequence) order with zero overhead.
	chooser Chooser
	// allEvents widens the candidate set from "events sharing the
	// earliest timestamp" to every pending event — the untimed
	// interpretation a protocol model checker wants, where a message may
	// take arbitrarily long and any pending action can happen next.
	allEvents bool

	// executed counts events dispatched, for diagnostics and tests.
	executed uint64

	// stamper, when non-nil, stamps every scheduled event with a Birth
	// key derived from the event currently executing. The parallel
	// runner installs it; sequential kernels leave it nil.
	stamper *birthClock

	// scratch buffers reused by stepChosen, which runs once per kernel
	// step under a model checker and must not allocate.
	ordered []scratchEvent
	cands   []Candidate
}

// scratchEvent pairs an event with its current position in the live
// heap, so stepChosen can remove the chosen event by index instead of
// scanning the heap for its sequence number.
type scratchEvent struct {
	event
	heapIdx int
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.events) }

// Executed reports the total number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a modeling bug.
func (k *Kernel) At(t Time, fn func()) { k.AtTagged(t, nil, fn) }

// AtTagged is At with a scheduling tag attached to the event, identifying
// it to a Chooser and to state-fingerprinting code.
func (k *Kernel) AtTagged(t Time, tag any, fn func()) {
	k.AtBounded(t, t, tag, fn)
}

// AtBounded schedules fn at t and declares bound: a lower bound on the
// earliest simulated time at which this event, or any event it
// transitively schedules, may take an action visible outside its
// partition (a cross-partition bus send). The default of the other
// schedule calls, bound == t, is always sound ("this event itself may
// send"). A larger bound is a promise the parallel runner uses to widen
// its synchronization windows; bound == Never promises the event's whole
// causal future stays partition-local. Outside parallel mode the bound
// is ignored.
//
// Soundness rule for callers: every event an fn with bound B schedules
// must itself carry a bound >= B (the default bound of a child at t' >= B
// satisfies this automatically).
func (k *Kernel) AtBounded(t, bound Time, tag any, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if bound < t {
		panic(fmt.Sprintf("sim: event bound %v precedes its time %v", bound, t))
	}
	k.seq++
	e := event{at: t, seq: k.seq, fn: fn, tag: tag, bound: bound}
	if k.stamper != nil {
		e.birth, e.parent = k.stamper.stamp()
	}
	k.events.push(e)
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// AfterTagged is After with a scheduling tag.
func (k *Kernel) AfterTagged(d Time, tag any, fn func()) { k.AtTagged(k.now+d, tag, fn) }

// SetChooser routes event dispatch order through ch (nil restores the
// default order). With allEvents false, only events sharing the earliest
// timestamp are offered — a tie-break refinement that preserves the
// timing model. With allEvents true, every pending event is a candidate:
// the untimed interpretation under which a model checker explores all
// message orderings regardless of latency constants; dispatching a later
// event advances the clock past it, so time stays monotonic.
func (k *Kernel) SetChooser(ch Chooser, allEvents bool) {
	k.chooser = ch
	k.allEvents = allEvents
}

// ForEachPending visits every pending event's (time, tag) in scheduling
// order. Model checkers include the pending set in state fingerprints.
func (k *Kernel) ForEachPending(fn func(at Time, tag any)) {
	ordered := append(eventHeap(nil), k.events...)
	sort.Slice(ordered, func(i, j int) bool { return ordered.Less(i, j) })
	for _, e := range ordered {
		fn(e.at, e.tag)
	}
}

// ForEachPendingTag visits every pending event's tag in arbitrary
// (heap) order without allocating. Callers that need a deterministic
// combination must make their per-event contribution order-insensitive,
// e.g. by sorting derived hashes.
func (k *Kernel) ForEachPendingTag(fn func(tag any)) {
	for i := range k.events {
		fn(k.events[i].tag)
	}
}

// Step dispatches one event — the single earliest, or the chooser's pick
// among the candidate set when a Chooser is installed. It reports false
// when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	if k.chooser == nil {
		e := k.events.pop()
		k.now = e.at
		k.executed++
		if k.stamper != nil {
			k.stamper.beginEvent(&e)
		}
		e.fn()
		return true
	}
	return k.stepChosen()
}

// stepChosen dispatches via the chooser. Candidates are presented in
// (time, sequence) order, so choice 0 is exactly the event the default
// path would dispatch.
func (k *Kernel) stepChosen() bool {
	ordered := k.ordered[:0]
	for i := range k.events {
		ordered = append(ordered, scratchEvent{event: k.events[i], heapIdx: i})
	}
	sortEvents(ordered)
	k.ordered = ordered
	n := len(ordered)
	if !k.allEvents {
		n = 1
		for n < len(ordered) && ordered[n].at == ordered[0].at {
			n++
		}
	}
	idx := 0
	if n > 1 {
		cands := k.cands[:0]
		for _, e := range ordered[:n] {
			cands = append(cands, Candidate{Tag: e.tag})
		}
		k.cands = cands
		idx = k.chooser.Choose(ChoicePoint{Kind: "sched"}, cands)
		if idx < 0 || idx >= n {
			panic(fmt.Sprintf("sim: chooser picked %d of %d candidates", idx, n))
		}
	}
	e := ordered[idx]
	// The scratch copy recorded each event's live heap position, and
	// nothing has mutated the heap since, so removal is O(log n) instead
	// of the historical O(pending) scan by sequence number.
	k.events.remove(e.heapIdx)
	if e.at > k.now {
		k.now = e.at
	}
	if obs, ok := k.chooser.(DispatchObserver); ok {
		obs.Dispatched(e.tag)
	}
	k.executed++
	e.fn()
	return true
}

// sortEvents orders the scratch copy by (at, seq) without the
// interface boxing of sort.Sort: candidate sets are small, so an
// insertion sort wins and allocates nothing.
func sortEvents(evs []scratchEvent) {
	for i := 1; i < len(evs); i++ {
		e := evs[i]
		j := i
		for j > 0 && (e.at < evs[j-1].at || (e.at == evs[j-1].at && e.seq < evs[j-1].seq)) {
			evs[j] = evs[j-1]
			j--
		}
		evs[j] = e
	}
}

// Run dispatches events until none remain and returns the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// RunUntil dispatches events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled beyond t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of simulated time.
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }

// The methods below are the seam the parallel runner (parallel.go) uses
// to drive a kernel as one partition of a larger machine. They bypass
// the chooser deliberately: parallel mode rejects choosers up front.

// NextAt reports the timestamp of the earliest pending event and whether
// one exists.
func (k *Kernel) NextAt() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// PeekKey reports the merge key of the earliest pending event — its
// birth stamp and its scheduler's lineage — for deterministic
// cross-kernel ordering of same-instant events. Valid only when NextAt
// reports true.
func (k *Kernel) PeekKey() (Birth, *lineage) {
	return k.events[0].birth, k.events[0].parent
}

// MinBound reports a lower bound on the earliest cross-partition effect
// among all pending events and their causal futures: the minimum bound
// over the pending set (exact, by the hereditary bound invariant on
// AtBounded). Never means no pending event can ever send. The linear
// scan beats a maintained heap here: partition kernels hold tens of
// pending events, and MinBound is read once per synchronization phase
// while a heap would pay per scheduled event.
func (k *Kernel) MinBound() Time {
	min := Never
	for i := range k.events {
		if b := k.events[i].bound; b < min {
			min = b
		}
	}
	return min
}

// RunWindow dispatches pending events with timestamps strictly below
// limit, in (time, sequence) order, and reports how many ran. It is the
// partition workhorse of the parallel runner: within the window the
// partition is causally isolated, so no chooser or cross-kernel merge
// applies.
func (k *Kernel) RunWindow(limit Time) uint64 {
	var n uint64
	for len(k.events) > 0 && k.events[0].at < limit {
		e := k.events.pop()
		k.now = e.at
		k.executed++
		if k.stamper != nil {
			k.stamper.beginEvent(&e)
		}
		e.fn()
		n++
	}
	return n
}

// StepAt dispatches the earliest pending event if its timestamp is
// exactly t, reporting whether it did.
func (k *Kernel) StepAt(t Time) bool {
	if len(k.events) == 0 || k.events[0].at != t {
		return false
	}
	e := k.events.pop()
	k.now = t
	k.executed++
	if k.stamper != nil {
		k.stamper.beginEvent(&e)
	}
	e.fn()
	return true
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// The parallel runner aligns every kernel's clock at synchronization
// points so that relative scheduling (After) from a coordinator-executed
// event lands at the right absolute time in every kernel.
func (k *Kernel) AdvanceTo(t Time) {
	if len(k.events) > 0 && k.events[0].at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip pending event at %v", t, k.events[0].at))
	}
	if t > k.now {
		k.now = t
	}
}
