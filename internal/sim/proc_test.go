package sim

import (
	"testing"
)

func TestProcRunsAndFinishes(t *testing.T) {
	k := NewKernel()
	ran := false
	p := k.Spawn("worker", func(p *Proc) { ran = true })
	k.Run()
	if !ran {
		t.Fatal("process body never ran")
	}
	if !p.Finished() {
		t.Fatal("process not marked finished")
	}
	if p.Name() != "worker" {
		t.Fatalf("Name() = %q, want worker", p.Name())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		woke = p.Now()
		p.Sleep(50)
	})
	end := k.Run()
	if woke != 100 {
		t.Fatalf("woke at %v, want 100", woke)
	}
	if end != 150 {
		t.Fatalf("run ended at %v, want 150", end)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			p.Sleep(10)
		}
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(5)
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			p.Sleep(10)
		}
	})
	k.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSuspendWithDeviceCallback(t *testing.T) {
	// Model a device that completes 42ns after a request is issued.
	k := NewKernel()
	var completion func()
	var result Time
	k.Spawn("p", func(p *Proc) {
		p.Suspend(func(wake func()) {
			completion = wake
			k.After(42, func() { completion() })
		})
		result = p.Now()
	})
	k.Run()
	if result != 42 {
		t.Fatalf("resumed at %v, want 42", result)
	}
}

func TestSuspendSynchronousWake(t *testing.T) {
	// An operation that completes immediately (e.g. a cache hit) may call
	// wake during issue; the process must continue without deadlock and
	// without time advancing.
	k := NewKernel()
	var after Time
	k.Spawn("p", func(p *Proc) {
		p.Suspend(func(wake func()) { wake() })
		after = p.Now()
		p.Sleep(7)
	})
	end := k.Run()
	if after != 0 {
		t.Fatalf("synchronous wake advanced time to %v", after)
	}
	if end != 7 {
		t.Fatalf("end = %v, want 7", end)
	}
}

func TestDoubleWakePanics(t *testing.T) {
	k := NewKernel()
	var saved func()
	k.Spawn("p", func(p *Proc) {
		p.Suspend(func(wake func()) {
			saved = wake
			k.After(1, wake)
		})
	})
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("second wake did not panic")
			}
		}()
		saved()
	})
	k.Run()
}

func TestManyProcsDeterminism(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Time(1 + (i*7+j*3)%11))
					order = append(order, i)
				}
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestProcSeesKernelTime(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		if p.Kernel() != k {
			t.Error("Kernel() did not return owning kernel")
		}
		p.Sleep(33)
		if p.Now() != k.Now() {
			t.Errorf("Proc.Now() %v != Kernel.Now() %v", p.Now(), k.Now())
		}
	})
	k.Run()
}
