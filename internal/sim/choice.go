package sim

// This file is the choice-point seam of the model checker (internal/mc).
//
// The kernel and the buses resolve scheduling ties deterministically: the
// kernel dispatches equal-time events in scheduling order, and a bus
// grants queued requests in arbitration-policy order. Both are arbitrary
// tie-breaks of the hardware's nondeterminism — two requesters raising
// their bus-request lines in the same cycle could be granted in either
// order. A Chooser makes that tie-break explicit: every place the
// simulator picks "the first" among several equally-legal alternatives
// asks the Chooser instead, so a model checker can enumerate every
// resolution while the default resolution stays byte-identical to the
// pre-seam behavior.

// ChoicePoint identifies one nondeterministic decision offered to a
// Chooser.
type ChoicePoint struct {
	// Kind is the decision class: "sched" for kernel event dispatch
	// order, "grant" for bus arbitration among queued requesters.
	Kind string
	// Name localizes the decision (a bus name; empty for the kernel).
	Name string
}

// Candidate is one alternative at a choice point.
type Candidate struct {
	// Tag is the scheduling tag of the underlying event or the queued
	// bus packet; model checkers use it to classify and fingerprint the
	// alternative.
	Tag any
}

// Label renders a human-readable description of the candidate for
// diagnostics. It formats on demand: the explorer resolves millions of
// choice points and never reads labels, so candidates must not pay for
// string formatting up front.
func (c Candidate) Label() string { return labelFor(c.Tag) }

// Chooser resolves nondeterministic ties. Choose must return an index in
// [0, len(cands)); returning 0 everywhere reproduces the default
// deterministic behavior. Choose is called only when len(cands) > 0; the
// candidate order is deterministic (scheduling order for "sched",
// arbitration-policy order for "grant"), so index 0 is always the choice
// the unseamed simulator would have made.
type Chooser interface {
	Choose(cp ChoicePoint, cands []Candidate) int
}

// DispatchObserver is an optional extension of Chooser: when the
// installed chooser also implements it, the kernel reports every
// dispatched event's tag — including single-candidate dispatches that
// never reach Choose. Model checkers use the stream to maintain state
// that must track execution rather than choice points alone (the
// sleep-set reduction removes a slept transition when a dependent
// transition fires, whether or not that firing was a real choice).
type DispatchObserver interface {
	Dispatched(tag any)
}

// DefaultChooser picks candidate 0 at every choice point, reproducing the
// seeded FIFO schedules exactly.
type DefaultChooser struct{}

// Choose implements Chooser.
func (DefaultChooser) Choose(ChoicePoint, []Candidate) int { return 0 }

// labelFor renders a candidate tag for diagnostics.
func labelFor(tag any) string {
	switch v := tag.(type) {
	case nil:
		return "?"
	case string:
		return v
	case interface{ String() string }:
		return v.String()
	default:
		return "?"
	}
}
