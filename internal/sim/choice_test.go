package sim

import (
	"reflect"
	"testing"
)

// lastChooser always picks the final candidate.
type lastChooser struct{ points int }

func (c *lastChooser) Choose(cp ChoicePoint, cands []Candidate) int {
	c.points++
	return len(cands) - 1
}

func tieRun(t *testing.T, ch Chooser) []string {
	t.Helper()
	k := NewKernel()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.AtTagged(10, name, func() { order = append(order, name) })
	}
	k.At(5, func() { order = append(order, "early") })
	k.SetChooser(ch, false)
	k.Run()
	return order
}

func TestDefaultChooserMatchesUnseamedOrder(t *testing.T) {
	want := tieRun(t, nil)
	got := tieRun(t, DefaultChooser{})
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("DefaultChooser order %v != unseamed order %v", got, want)
	}
	if !reflect.DeepEqual(want, []string{"early", "a", "b", "c"}) {
		t.Fatalf("unseamed order = %v, want early,a,b,c", want)
	}
}

func TestChooserReordersTies(t *testing.T) {
	got := tieRun(t, &lastChooser{})
	// The early event is alone at t=5 (no choice); the three tied events
	// then dispatch in reverse: picking the last candidate each time.
	if !reflect.DeepEqual(got, []string{"early", "c", "b", "a"}) {
		t.Fatalf("order = %v, want early,c,b,a", got)
	}
}

func TestAllEventsModeReordersAcrossTime(t *testing.T) {
	k := NewKernel()
	var order []string
	k.AtTagged(5, "early", func() { order = append(order, "early") })
	k.AtTagged(10, "late", func() { order = append(order, "late") })
	k.SetChooser(&lastChooser{}, true)
	if !k.Step() {
		t.Fatal("no event dispatched")
	}
	if len(order) != 1 || order[0] != "late" {
		t.Fatalf("first dispatch = %v, want late", order)
	}
	if k.Now() != 10 {
		t.Fatalf("clock = %v after firing t=10 event, want 10", k.Now())
	}
	k.Step()
	if k.Now() != 10 {
		t.Fatalf("clock = %v after firing stale t=5 event, want to stay 10", k.Now())
	}
	if !reflect.DeepEqual(order, []string{"late", "early"}) {
		t.Fatalf("order = %v, want late,early", order)
	}
}

func TestForEachPendingOrder(t *testing.T) {
	k := NewKernel()
	k.AtTagged(20, "b", func() {})
	k.AtTagged(10, "a", func() {})
	k.AtTagged(20, "c", func() {})
	var tags []string
	k.ForEachPending(func(at Time, tag any) { tags = append(tags, tag.(string)) })
	if !reflect.DeepEqual(tags, []string{"a", "b", "c"}) {
		t.Fatalf("pending order = %v, want a,b,c", tags)
	}
}
