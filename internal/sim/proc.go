package sim

// Proc couples an ordinary Go function to the kernel so it can act as a
// simulated processor. The function runs on its own goroutine but control
// strictly alternates with the kernel: the goroutine runs only while the
// kernel is parked, and the kernel runs only while every Proc is suspended.
// A Proc may therefore touch kernel-owned state freely while it is running.
//
// The function must block only through Suspend (or helpers built on it,
// such as Sleep); blocking on anything else deadlocks the simulation.
type Proc struct {
	k        *Kernel
	resume   chan struct{}
	yield    chan struct{}
	finished bool
	name     string
}

// Spawn starts fn as a simulated process. The process begins executing at
// the current simulated time, when the kernel next dispatches events. name
// is used in diagnostics only.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		name:   name,
	}
	k.procs = append(k.procs, p)
	// The goroutine is a coroutine, not a concurrent actor: control is
	// handed over explicitly through resume/yield, and only one side runs
	// at a time. This is the mechanism the chooser seam is built on.
	//multicube:chooser-ok coroutine pump; strictly alternating handoff, no races
	go func() {
		<-p.resume // wait for the kernel to hand over control
		fn(p)
		p.finished = true
		p.yield <- struct{}{}
	}()
	// The start event transfers control to the goroutine for the first time.
	k.After(0, p.dispatch)
	return p
}

// dispatch transfers control from kernel context to the process goroutine
// and blocks until the process suspends or finishes.
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.yield
}

// Kernel returns the kernel this process is attached to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Finished reports whether the process function has returned.
func (p *Proc) Finished() bool { return p.finished }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Suspend parks the process until some future event calls wake. The issue
// callback runs on the process goroutine (while the kernel is parked) and
// must arrange for wake to be called exactly once — either synchronously
// during issue (an operation that completes immediately) or later from
// kernel context, typically as a completion callback registered with a
// device model. Calling wake more than once panics.
func (p *Proc) Suspend(issue func(wake func())) {
	woken := false
	parked := false
	issue(func() {
		if woken {
			panic("sim: Proc wake called twice")
		}
		woken = true
		if parked {
			// Kernel context: hand control back to the process and wait
			// for it to suspend again or finish.
			p.dispatch()
		}
		// Otherwise the operation completed synchronously during issue;
		// Suspend returns without ever parking.
	})
	if woken {
		return
	}
	// Hand control back to the kernel; block until wake runs.
	parked = true
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d nanoseconds of simulated time.
func (p *Proc) Sleep(d Time) {
	p.Suspend(func(wake func()) { p.k.After(d, wake) })
}
