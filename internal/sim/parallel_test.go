package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// The toy model exercised here mirrors the shape of the Multicube
// partitioning without the coherence machinery: each partition runs a
// chain of local events, every third chain event performs a
// cross-partition send, and a send delivers to the next partition after
// a fixed latency L. The sequential reference executes the identical
// model on one kernel with sends inlined; parallel execution must
// reproduce its logs and final time exactly.

const toyLookahead Time = 50

type toyRecord struct {
	At   Time
	Src  int // -1 for a local chain event
	Step int
}

type toyPart struct {
	id    int
	k     *Kernel
	log   []toyRecord
	rng   uint64
	sched func(src, dst int, sendAt Time) // cross-partition send routing
}

func (p *toyPart) next() Time { // deterministic per-partition stride
	p.rng = p.rng*6364136223846793005 + 1442695040888963407
	return Time(61 + (p.rng>>33)%97)
}

// chain schedules step i of partition p's chain at t. Steps with
// i%3 == 2 send. Chain strides are drawn inside events, so the time of
// the next sending step is unknown at scheduling time and the
// conservative hereditary bound is the event's own time — except for a
// send-free chain tail, which may promise Never.
func (p *toyPart) chain(t Time, i, steps int) {
	if i >= steps {
		return
	}
	bound := t
	if lastSend := ((steps - 1) / 3) * 3; i > lastSend+2 {
		bound = Never // no sending step remains in this chain
	}
	p.k.AtBounded(t, bound, nil, func() {
		p.log = append(p.log, toyRecord{At: t, Src: -1, Step: i})
		if i%3 == 2 {
			p.sched(p.id, (p.id+1)%4, t)
		}
		p.chain(t+p.next(), i+1, steps)
	})
}

func runToy(t *testing.T, steps, workers int) ([][]toyRecord, Time) {
	t.Helper()
	global := NewKernel()
	kernels := make([]*Kernel, 4)
	parts := make([]*toyPart, 4)
	for i := range kernels {
		kernels[i] = NewKernel()
	}
	r := NewRunner(global, kernels, toyLookahead, workers)
	for i := range parts {
		p := &toyPart{id: i, k: kernels[i], rng: uint64(i + 1)}
		p.sched = func(src, dst int, sendAt Time) {
			deliver := func() {
				at := sendAt + toyLookahead
				kernels[dst].AtBounded(at, Never, nil, func() {
					parts[dst].log = append(parts[dst].log, toyRecord{At: at, Src: src})
				})
			}
			if r.InGlobal() {
				deliver()
			} else {
				r.Defer(src, deliver)
			}
		}
		parts[i] = p
		p.chain(Time(100+i*7), 0, steps)
	}
	final := r.Run(nil)
	logs := make([][]toyRecord, 4)
	for i, p := range parts {
		logs[i] = p.log
	}
	return logs, final
}

func runToySequential(steps int) ([][]toyRecord, Time) {
	k := NewKernel()
	parts := make([]*toyPart, 4)
	for i := range parts {
		p := &toyPart{id: i, k: k, rng: uint64(i + 1)}
		p.sched = func(src, dst int, sendAt Time) {
			at := sendAt + toyLookahead
			k.At(at, func() {
				parts[dst].log = append(parts[dst].log, toyRecord{At: at, Src: src})
			})
		}
		parts[i] = p
		p.chain(Time(100+i*7), 0, steps)
	}
	final := k.Run()
	logs := make([][]toyRecord, 4)
	for i, p := range parts {
		logs[i] = p.log
	}
	return logs, final
}

func TestRunnerMatchesSequentialToyModel(t *testing.T) {
	const steps = 400
	wantLogs, wantFinal := runToySequential(steps)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			logs, final := runToy(t, steps, workers)
			if final != wantFinal {
				t.Fatalf("final time %v, sequential %v", final, wantFinal)
			}
			for i := range logs {
				if !reflect.DeepEqual(logs[i], wantLogs[i]) {
					t.Fatalf("partition %d log diverged from sequential:\npar: %v\nseq: %v",
						i, trunc(logs[i]), trunc(wantLogs[i]))
				}
			}
		})
	}
}

func trunc(r []toyRecord) []toyRecord {
	if len(r) > 12 {
		return r[:12]
	}
	return r
}

func TestRunnerExecutedMatchesSequential(t *testing.T) {
	const steps = 100
	_, _ = runToySequential(steps)
	seqK := NewKernel()
	_ = seqK
	logs, _ := runToy(t, steps, 2)
	var events int
	for _, l := range logs {
		events += len(l)
	}
	// 4 partitions × steps chain events + one delivery per send.
	sendsPerChain := 0
	for i := 0; i < steps; i++ {
		if i%3 == 2 {
			sendsPerChain++
		}
	}
	want := 4*steps + 4*sendsPerChain
	if events != want {
		t.Fatalf("logged %d records, want %d", events, want)
	}
}

func TestAtBoundedRejectsBoundBeforeTime(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bound < t")
		}
	}()
	k.AtBounded(100, 50, nil, func() {})
}

func TestAdvanceToRefusesToSkipEvents(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic advancing past a pending event")
		}
	}()
	k.AdvanceTo(20)
}
