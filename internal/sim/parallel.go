// Conservative parallel execution of a partitioned machine.
//
// The Runner drives one global Kernel plus one Kernel per partition. The
// machine model decides the partitioning (core partitions a Multicube by
// column: each partition owns its column bus, memory module and nodes,
// and the row buses live on the global kernel). Execution alternates
// between two phases:
//
//   - Parallel windows. The runner computes a window limit W such that
//     no event outside a partition can affect it before W, then lets
//     every partition dispatch its own events with timestamps < W
//     concurrently, one partition per worker. Cross-partition sends
//     (row-bus requests) occurring inside a window are deferred into a
//     per-partition outbox instead of touching shared state.
//
//   - Boundaries. With all workers parked, the runner drains the
//     outboxes and executes everything scheduled at the earliest
//     remaining instant T — global events, partition events and deferred
//     sends — on the coordinator goroutine, in a deterministic merge
//     order that reproduces the sequential kernel's scheduling order
//     exactly (see cand and cmpLin).
//
// W is sound because of the hereditary bound invariant documented on
// AtBounded: a partition's MinBound is a lower bound on the earliest
// cross-partition send in the causal future of its pending events, and a
// send at time t cannot be observed by another partition before t +
// lookahead (the minimum bus occupancy before any delivery). Global
// events and pending sends cap W directly since they may touch any
// partition when executed.
//
// Determinism does not rely on goroutine scheduling: window execution is
// per-partition sequential over disjoint state, and every cross-partition
// ordering decision is taken by the coordinator from birth stamps and
// scheduler lineages that are themselves deterministic. In the
// sequential kernel, same-instant events dispatch in global sequence
// order, which is lexicographic (scheduling instant, scheduler's own
// dispatch position, slot within the scheduler's body); lineage chains
// record exactly that recursion, grounded at setup order, so the merge
// reproduces sequential order without a shared counter. The nolockstep
// vet pass enforces that the concurrency primitives below stay confined
// to the annotated sync-point functions.
//
//multicube:parallel-runtime worker fan-out is re-merged deterministically
package sim

import (
	"runtime"
	"sort"
)

// Send is a deferred cross-partition action: a closure captured inside a
// parallel window that must execute at boundary time in merge order.
type Send struct {
	// At is the simulated time the send was issued (the issuing event's
	// time); the action executes at a boundary at exactly this instant.
	At Time
	// parent is the lineage of the issuing event, whose position in
	// sequential scheduling order the send inherits: sequentially the
	// action would have run inline inside that event. idx is the
	// composite scheduling slot Defer reserved in the parent's body; the
	// resumed action's children slot under it (idx | sub), landing
	// exactly where inline execution would have scheduled them.
	parent *lineage
	idx    uint64
	Fn     func()
}

// Runner coordinates a global kernel and per-partition kernels.
type Runner struct {
	global    *Kernel
	parts     []*Kernel
	lookahead Time
	workers   int

	// clock is the shared birth stamp source used whenever the
	// coordinator executes events (boundaries, setup); during windows
	// each partition stamps from its own clock.
	clock      birthClock
	partClocks []birthClock

	// inGlobal is true whenever the coordinator (or setup code) is
	// executing and false only while workers own the partitions. Routing
	// code (coherence issueRow) reads it to decide direct-vs-deferred.
	// It is written strictly before jobs are handed to workers and after
	// all workers park, so the channel operations order every access.
	inGlobal bool

	outboxes [][]Send
	sends    []Send // drained, sorted, pending cross-partition actions

	jobs chan winJob
	done chan struct{}

	// fanout selects whether windows are dispatched to the worker pool.
	// It defaults to GOMAXPROCS > 1: on a single-CPU host goroutines
	// cannot overlap, so the channel handoffs would be pure overhead and
	// every window runs inline on the coordinator instead. Results are
	// identical either way — the differential tests force both paths.
	fanout bool

	// active is per-window scratch: the partitions with work below the
	// limit and their pre-window dispatch counts (for the critical-path
	// accounting in RunnerStats).
	active []winJob
	before []uint64

	stats RunnerStats
}

// RunnerStats counts the runner's phases, for tuning and tests.
type RunnerStats struct {
	// Windows is the number of parallel windows executed; Jobs the
	// total partition jobs run across them (solo windows and the
	// coordinator's own job included).
	Windows uint64
	Jobs    uint64
	// Boundaries is the number of coordinator merge phases; Bsteps the
	// events and sends dispatched inside them.
	Boundaries uint64
	Bsteps     uint64
	// WinSteps is the total events dispatched inside windows; CritSteps
	// sums each window's largest single-partition share. Bsteps plus
	// CritSteps is the engine's critical path: with enough cores, wall
	// time scales with it rather than with WinSteps+Bsteps, so
	// (WinSteps+Bsteps)/(CritSteps+Bsteps) is the speedup available to
	// a machine with as many cores as partitions.
	WinSteps  uint64
	CritSteps uint64
}

// Parallelism reports the available speedup implied by the counters:
// total dispatched work over the critical path (the serial boundary
// steps plus each window's largest partition share). This is what wall
// clock converges to on a host with at least as many cores as busy
// partitions; on fewer cores the wall-clock speedup is capped by the
// core count.
func (s RunnerStats) Parallelism() float64 {
	crit := s.CritSteps + s.Bsteps
	if crit == 0 {
		return 1
	}
	return float64(s.WinSteps+s.Bsteps) / float64(crit)
}

type winJob struct {
	part  int
	limit Time
}

// NewRunner wires a runner over the given kernels. lookahead is the
// minimum simulated delay between a cross-partition send and its
// earliest visible effect (for the Multicube: the address-cycle bus
// occupancy, since a row-bus request cannot deliver sooner). workers is
// clamped to the partition count.
func NewRunner(global *Kernel, parts []*Kernel, lookahead Time, workers int) *Runner {
	if lookahead == 0 {
		panic("sim: parallel runner needs nonzero lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	r := &Runner{
		global:     global,
		parts:      parts,
		lookahead:  lookahead,
		workers:    workers,
		partClocks: make([]birthClock, len(parts)),
		outboxes:   make([][]Send, len(parts)),
		inGlobal:   true,
		fanout:     runtime.GOMAXPROCS(0) > 1,
	}
	global.stamper = &r.clock
	for _, p := range parts {
		p.stamper = &r.clock
	}
	return r
}

// Global returns the kernel owning cross-partition (row bus) events.
func (r *Runner) Global() *Kernel { return r.global }

// Part returns partition i's kernel.
func (r *Runner) Part(i int) *Kernel { return r.parts[i] }

// Parts returns the partition count.
func (r *Runner) Parts() int { return len(r.parts) }

// Workers returns the effective worker count.
func (r *Runner) Workers() int { return r.workers }

// Stats returns phase counters accumulated by Run.
func (r *Runner) Stats() RunnerStats { return r.stats }

// SetFanout overrides the worker-pool dispatch decision (see the fanout
// field). Call it before Run; the differential tests use it to exercise
// the fan-out path under the race detector on single-CPU hosts.
func (r *Runner) SetFanout(on bool) { r.fanout = on }

// Fanout reports whether windows are dispatched to the worker pool.
func (r *Runner) Fanout() bool { return r.fanout }

// InGlobal reports whether execution is currently in a coordinator phase
// (boundary or setup), where cross-partition actions may run directly.
// During parallel windows it reports false and such actions must be
// deferred through Defer.
func (r *Runner) InGlobal() bool { return r.inGlobal }

// Defer buffers a cross-partition action issued by the event currently
// executing on partition part. It may only be called from that
// partition's window execution (the outbox is single-writer). The call
// consumes one scheduling slot in the issuing event's body, so the
// deferred action keeps its inline position relative to the event's
// other children.
func (r *Runner) Defer(part int, fn func()) {
	c := r.parts[part].stamper
	b, parent := c.stamp()
	r.outboxes[part] = append(r.outboxes[part], Send{
		At:     c.at,
		parent: parent,
		idx:    b.Idx,
		Fn:     fn,
	})
}

// cand is a merge candidate at a boundary: a pending kernel event keyed
// by its own (birth time, scheduler lineage, birth slot), or a deferred
// send keyed by its issuing parent's position (the send executes where
// its parent's body ran sequentially), with the reserved slot breaking
// ties among sends of one parent. The triple equals the sequential
// kernel's global sequence order (see cmpLin); a send and an event can
// never tie on all three, since that would make the event its own
// already-dispatched parent.
type cand struct {
	at   Time
	par  *lineage
	idx  uint64
	send uint64 // 1 + reserved slot for sends; 0 for kernel events
}

func candLess(a, b cand) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if c := cmpLin(a.par, b.par); c != 0 {
		return c < 0
	}
	if a.idx != b.idx {
		return a.idx < b.idx
	}
	return a.send < b.send
}

// sendCand keys a deferred send for the merge.
func sendCand(s *Send) cand {
	return cand{at: s.parent.bAt, par: s.parent.parent, idx: s.parent.idx, send: 1 + s.idx}
}

// drain moves every outbox entry into the pending send list, keeping it
// sorted by (At, parent position, reserved slot).
func (r *Runner) drain() {
	moved := false
	for p := range r.outboxes {
		if len(r.outboxes[p]) > 0 {
			r.sends = append(r.sends, r.outboxes[p]...)
			r.outboxes[p] = r.outboxes[p][:0]
			moved = true
		}
	}
	if !moved {
		return
	}
	sort.Slice(r.sends, func(i, j int) bool {
		a, b := &r.sends[i], &r.sends[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return candLess(sendCand(a), sendCand(b))
	})
}

// nextInstant reports the earliest pending timestamp across all sources.
func (r *Runner) nextInstant() (Time, bool) {
	t, any := Never, false
	if gt, ok := r.global.NextAt(); ok {
		t, any = gt, true
	}
	if len(r.sends) > 0 && r.sends[0].At < t {
		t, any = r.sends[0].At, true
	}
	for _, p := range r.parts {
		if pt, ok := p.NextAt(); ok && pt < t {
			t, any = pt, true
		}
	}
	return t, any
}

// windowLimit computes W: partitions may run events strictly below W in
// parallel. Capped by the earliest global event or pending send (either
// may touch any partition when executed) and by every partition's
// MinBound plus the lookahead (the earliest instant a not-yet-executed
// cross-partition send could become visible). t is the earliest pending
// instant (from nextInstant): when the global/send cap already equals t
// the phase is a boundary no matter what the partitions hold — every
// pending bound is ≥ t, so it cannot pull W below t+lookahead — and the
// per-partition scans are skipped, which matters in send-heavy runs.
func (r *Runner) windowLimit(t Time) Time {
	w := Never
	if gt, ok := r.global.NextAt(); ok {
		w = gt
	}
	if len(r.sends) > 0 && r.sends[0].At < w {
		w = r.sends[0].At
	}
	if w == t {
		return w
	}
	for _, p := range r.parts {
		if b := p.MinBound(); b != Never && b+r.lookahead < w {
			w = b + r.lookahead
		}
	}
	return w
}

// boundary executes every piece of work scheduled at exactly T, merging
// global events, partition events and drained sends deterministically.
// New work landing at T during execution (e.g. an idle bus granting and
// a zero-latency forward) joins the merge.
func (r *Runner) boundary(t Time) {
	r.global.AdvanceTo(t)
	for _, p := range r.parts {
		p.AdvanceTo(t)
	}
	for {
		const (
			srcNone = iota
			srcGlobal
			srcPart
			srcSend
		)
		src, bestPart := srcNone, 0
		var best cand
		if at, ok := r.global.NextAt(); ok && at == t {
			b, par := r.global.PeekKey()
			best, src = cand{at: b.At, par: par, idx: b.Idx}, srcGlobal
		}
		for i, p := range r.parts {
			if at, ok := p.NextAt(); ok && at == t {
				b, par := p.PeekKey()
				c := cand{at: b.At, par: par, idx: b.Idx}
				if src == srcNone || candLess(c, best) {
					best, src, bestPart = c, srcPart, i
				}
			}
		}
		if len(r.sends) > 0 && r.sends[0].At == t {
			if c := sendCand(&r.sends[0]); src == srcNone || candLess(c, best) {
				best, src = c, srcSend
			}
		}
		switch src {
		case srcNone:
			return
		case srcSend:
			r.stats.Bsteps++
			s := r.sends[0]
			r.sends = r.sends[1:]
			// Resume the issuing event's context: children scheduled by
			// the send slot under its parent at the reserved index,
			// exactly as if the action had run inline inside that event.
			r.clock.beginResume(t, s.parent, s.idx)
			s.Fn()
			r.clock.endResume()
		case srcGlobal:
			r.stats.Bsteps++
			r.global.StepAt(t)
		default:
			r.stats.Bsteps++
			r.parts[bestPart].StepAt(t)
		}
	}
}

// runWindow runs every partition with work below limit and parks until
// all are done. Windows are often tiny (a few dozen events across one
// or two partitions), so the handoff is tuned to keep the coordinator
// off the scheduler where it can: a window with a single busy partition
// runs inline on the coordinator with no channel traffic at all, and in
// a multi-partition window the coordinator executes the first job
// itself while the workers take the rest. The jobs channel handoff
// publishes all coordinator writes to the worker; the done channel
// handoff publishes the partition's window execution back.
//
//multicube:syncpoint window fan-out/fan-in barrier
func (r *Runner) runWindow(limit Time) {
	r.inGlobal = false
	for i, p := range r.parts {
		p.stamper = &r.partClocks[i]
	}
	r.active = r.active[:0]
	for i, p := range r.parts {
		if at, ok := p.NextAt(); ok && at < limit {
			r.active = append(r.active, winJob{part: i, limit: limit})
			r.before = append(r.before, p.Executed())
		}
	}
	r.stats.Windows++
	r.stats.Jobs += uint64(len(r.active))
	if n := len(r.active); n > 0 {
		if r.fanout && n > 1 {
			for _, j := range r.active[1:] {
				r.jobs <- j
			}
			r.parts[r.active[0].part].RunWindow(limit)
			for ; n > 1; n-- {
				<-r.done
			}
		} else {
			for _, j := range r.active {
				r.parts[j.part].RunWindow(limit)
			}
		}
	}
	var sum, max uint64
	for i, j := range r.active {
		d := r.parts[j.part].Executed() - r.before[i]
		sum += d
		if d > max {
			max = d
		}
	}
	r.before = r.before[:0]
	r.stats.WinSteps += sum
	r.stats.CritSteps += max
	for _, p := range r.parts {
		p.stamper = &r.clock
	}
	r.inGlobal = true
}

// worker executes window jobs until the jobs channel closes. Each job is
// the only live reference to its partition's state, so execution is
// data-race-free by ownership transfer, not by locking.
//
//multicube:syncpoint partition ownership transferred via channels
func (r *Runner) worker() {
	for j := range r.jobs {
		r.parts[j.part].RunWindow(j.limit)
		r.done <- struct{}{}
	}
}

// Run executes the partitioned machine to completion (or until stop
// returns true, checked between phases) and returns the final simulated
// time, advancing every kernel's clock to it. Results are identical to
// sequential execution of the same machine on one kernel — the
// differential tests in internal/integration compare the two modes
// byte for byte.
//
//multicube:syncpoint owns the worker pool lifecycle
func (r *Runner) Run(stop func() bool) Time {
	if r.fanout {
		r.jobs = make(chan winJob, len(r.parts))
		r.done = make(chan struct{}, len(r.parts))
		for i := 0; i < r.workers; i++ {
			//multicube:chooser-ok worker pool; partitions are re-merged deterministically at boundaries
			go r.worker()
		}
	}
	for {
		if stop != nil && stop() {
			break
		}
		r.drain()
		t, any := r.nextInstant()
		if !any {
			break
		}
		if w := r.windowLimit(t); w > t {
			r.runWindow(w)
			continue
		}
		r.stats.Boundaries++
		r.boundary(t)
	}
	if r.jobs != nil {
		close(r.jobs)
		r.jobs = nil
	}
	final := r.global.Now()
	for _, p := range r.parts {
		if p.Now() > final {
			final = p.Now()
		}
	}
	r.global.AdvanceTo(final)
	for _, p := range r.parts {
		p.AdvanceTo(final)
	}
	return final
}

// Executed sums dispatched events across all kernels.
func (r *Runner) Executed() uint64 {
	n := r.global.Executed()
	for _, p := range r.parts {
		n += p.Executed()
	}
	return n
}
