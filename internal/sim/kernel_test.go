package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
	if k.Now() != 30 {
		t.Errorf("final time %v, want 30", k.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	k := NewKernel()
	var fired Time
	k.At(50, func() {
		k.After(25, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 75 {
		t.Fatalf("After fired at %v, want 75", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	k := NewKernel()
	ran := map[Time]bool{}
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { ran[at] = true })
	}
	k.RunUntil(25)
	if !ran[10] || !ran[20] {
		t.Error("events at or before 25 did not run")
	}
	if ran[30] || ran[40] {
		t.Error("events after 25 ran early")
	}
	if k.Now() != 25 {
		t.Errorf("Now() = %v, want 25", k.Now())
	}
	// Inclusive boundary.
	k.RunUntil(30)
	if !ran[30] {
		t.Error("event at exactly 30 did not run on RunUntil(30)")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	k := NewKernel()
	k.RunFor(100)
	if k.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", k.Now())
	}
	k.RunFor(50)
	if k.Now() != 150 {
		t.Fatalf("Now() = %v, want 150", k.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Fatal("Step on empty kernel returned true")
	}
	k.At(1, func() {})
	if !k.Step() {
		t.Fatal("Step with pending event returned false")
	}
	if k.Executed() != 1 {
		t.Fatalf("Executed() = %d, want 1", k.Executed())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next; the kernel must
	// drain all of them.
	k := NewKernel()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			k.After(1, step)
		}
	}
	k.At(0, step)
	end := k.Run()
	if count != 1000 {
		t.Fatalf("ran %d chained events, want 1000", count)
	}
	if end != 999 {
		t.Fatalf("final time %v, want 999", end)
	}
}

// Property: for any set of scheduled times, events execute in sorted order
// and the kernel finishes at the maximum time.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := NewKernel()
		var got []Time
		for _, r := range raw {
			at := Time(r)
			k.At(at, func() { got = append(got, at) })
		}
		k.Run()
		if len(got) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		var max Time
		for _, r := range raw {
			if Time(r) > max {
				max = Time(r)
			}
		}
		return k.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two kernels fed the same randomized workload execute the same
// number of events and end at the same time (determinism).
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, Time) {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var schedule func()
		n := 0
		schedule = func() {
			n++
			if n > 500 {
				return
			}
			k.After(Time(rng.Intn(50)), schedule)
			if rng.Intn(2) == 0 {
				k.After(Time(rng.Intn(100)), func() {})
			}
		}
		k.At(0, schedule)
		end := k.Run()
		return k.Executed(), end
	}
	for seed := int64(0); seed < 20; seed++ {
		e1, t1 := run(seed)
		e2, t2 := run(seed)
		if e1 != e2 || t1 != t2 {
			t.Fatalf("seed %d: run1=(%d,%v) run2=(%d,%v)", seed, e1, t1, e2, t2)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3*Second + 250*Millisecond, "3.250s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}
