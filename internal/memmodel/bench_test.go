package memmodel

import (
	"fmt"
	"testing"
)

// BenchmarkSCCheck measures the SC checker on litmus-sized histories
// (the shapes mc checks after every explored execution) and on the
// larger histories the DES litmus sweeps produce.
func BenchmarkSCCheck(b *testing.B) {
	const x, y = 10, 20
	litmus := map[string]*History{
		"sb": hb(
			w(0, x, 0, 1), r(0, y, 2),
			w(1, y, 0, 2), r(1, x, 1),
		),
		"iriw": hb(
			w(0, x, 0, 1),
			w(1, y, 0, 2),
			r(2, x, 1), r(2, y, 0),
			r(3, y, 2), r(3, x, 1),
		),
	}
	for name, h := range litmus {
		b.Run("litmus/"+name, func(b *testing.B) {
			benchCheck(b, h)
		})
	}
	for _, size := range []int{50, 100, 200} {
		rng := &splitmix{s: 0xbe0c + uint64(size)}
		h := buildSC(rng, 5, 4, size)
		b.Run(fmt.Sprintf("generated/n%d", size), func(b *testing.B) {
			benchCheck(b, h)
		})
	}
}

func benchCheck(b *testing.B, h *History) {
	res := Check(h, Options{})
	if res.Verdict != VerdictOK {
		b.Fatalf("benchmark history not SC: %s (%s)", res.Verdict, res.Reason)
	}
	b.ReportMetric(float64(res.Nodes), "nodes/check")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Check(h, Options{})
	}
}
