package memmodel

import (
	"strings"
	"testing"
)

// TestCoherenceErrorDeterministic guards the determinism fix in
// writeOrders: when several addresses are corrupt, the reported
// violation must always be the smallest address (and within one address,
// the smallest dangling predecessor), so that internal/mc's textual
// counterexample comparison is stable across runs.
func TestCoherenceErrorDeterministic(t *testing.T) {
	t.Run("smallest address wins", func(t *testing.T) {
		build := func() *History {
			h := NewHistory()
			// Ten corrupt addresses: every write observed a predecessor
			// value no write produced. Insert high-to-low so sortedness
			// cannot come from insertion order.
			for a := 10; a >= 1; a-- {
				h.Write(0, uint64(a), uint64(100+a), uint64(a))
			}
			return h
		}
		err := build().CheckCoherence()
		if err == nil {
			t.Fatal("corrupt history passed CheckCoherence")
		}
		if !strings.HasPrefix(err.Error(), "line 1:") {
			t.Fatalf("error should name the smallest corrupt address: %v", err)
		}
		for i := 0; i < 30; i++ {
			if got := build().CheckCoherence(); got == nil || got.Error() != err.Error() {
				t.Fatalf("run %d error differs: %v vs %v", i, got, err)
			}
		}
	})

	t.Run("smallest dangling predecessor wins", func(t *testing.T) {
		h := NewHistory()
		h.Write(0, 5, 60, 1) // observed 60, never produced
		h.Write(1, 5, 50, 2) // observed 50, never produced
		err := h.CheckCoherence()
		if err == nil {
			t.Fatal("dangling predecessors passed CheckCoherence")
		}
		if !strings.Contains(err.Error(), "overwrote value 50") {
			t.Fatalf("error should name the smallest dangling predecessor: %v", err)
		}
	})
}
