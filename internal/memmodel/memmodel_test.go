package memmodel

import (
	"strings"
	"testing"
)

// hb builds a history from a compact event list.
func hb(events ...Event) *History {
	h := NewHistory()
	for _, e := range events {
		h.Append(e)
	}
	return h
}

func r(proc int, addr, val uint64) Event {
	return Event{Proc: proc, Addr: addr, Value: val}
}

func w(proc int, addr, old, val uint64) Event {
	return Event{Proc: proc, Addr: addr, Write: true, Value: val, Old: old}
}

// verifyWitness replays the order the checker returned and fails the
// test unless it really is a witness: a permutation of all events,
// respecting each processor's program order, under which sequential
// memory semantics reproduce every observed value.
func verifyWitness(t *testing.T, h *History, order []int) {
	t.Helper()
	events := h.Events()
	if len(order) != len(events) {
		t.Fatalf("witness order has %d entries, history has %d events", len(order), len(events))
	}
	seen := make([]bool, len(events))
	lastPerProc := make(map[int]int)
	mem := make(map[uint64]uint64)
	for _, i := range order {
		if i < 0 || i >= len(events) || seen[i] {
			t.Fatalf("witness order is not a permutation: bad or repeated index %d", i)
		}
		seen[i] = true
		e := events[i]
		if prev, ok := lastPerProc[e.Proc]; ok && i < prev {
			t.Fatalf("witness order breaks proc %d program order: event %d after %d", e.Proc, i, prev)
		}
		lastPerProc[e.Proc] = i
		if e.Write {
			if mem[e.Addr] != e.Old {
				t.Fatalf("witness replay: write %v found memory value %d, not the recorded old %d", e, mem[e.Addr], e.Old)
			}
			mem[e.Addr] = e.Value
		} else if mem[e.Addr] != e.Value {
			t.Fatalf("witness replay: read %v found memory value %d", e, mem[e.Addr])
		}
	}
}

// TestAdversarial is the adversarial self-test: hand-written histories
// with known verdicts. The non-SC rows are the classic forbidden litmus
// outcomes; the checker must reject every one. The SC rows are allowed
// outcomes of the same shapes; the checker must accept and produce a
// real witness order.
func TestAdversarial(t *testing.T) {
	const x, y = 10, 20
	cases := []struct {
		name    string
		h       *History
		want    Verdict
		holds   string // substring the violation reason must contain ("" = any)
		perAddr bool   // violation must already be visible to CheckCoherence
	}{
		{
			name: "sb-forbidden-r1=r2=0",
			h: hb(
				w(0, x, 0, 1), r(0, y, 0),
				w(1, y, 0, 2), r(1, x, 0),
			),
			want:  VerdictViolation,
			holds: "no sequentially consistent total order",
		},
		{
			name: "sb-allowed-one-read-sees",
			h: hb(
				w(0, x, 0, 1), r(0, y, 0),
				w(1, y, 0, 2), r(1, x, 1),
			),
			want: VerdictOK,
		},
		{
			name: "sb-allowed-both-reads-see",
			h: hb(
				w(0, x, 0, 1), r(0, y, 2),
				w(1, y, 0, 2), r(1, x, 1),
			),
			want: VerdictOK,
		},
		{
			name: "mp-forbidden-flag-without-data",
			h: hb(
				w(0, x, 0, 1), w(0, y, 0, 2),
				r(1, y, 2), r(1, x, 0),
			),
			want:  VerdictViolation,
			holds: "no sequentially consistent total order",
		},
		{
			name: "mp-allowed",
			h: hb(
				w(0, x, 0, 1), w(0, y, 0, 2),
				r(1, y, 2), r(1, x, 1),
			),
			want: VerdictOK,
		},
		{
			name: "lb-forbidden-cycle",
			h: hb(
				r(0, x, 2), w(0, y, 0, 1),
				r(1, y, 1), w(1, x, 0, 2),
			),
			want:  VerdictViolation,
			holds: "no sequentially consistent total order",
		},
		{
			name: "lb-allowed",
			h: hb(
				r(0, x, 0), w(0, y, 0, 1),
				r(1, y, 1), w(1, x, 0, 2),
			),
			want: VerdictOK,
		},
		{
			name: "iriw-forbidden-readers-disagree",
			h: hb(
				w(0, x, 0, 1),
				w(1, y, 0, 2),
				r(2, x, 1), r(2, y, 0),
				r(3, y, 2), r(3, x, 0),
			),
			want:  VerdictViolation,
			holds: "no sequentially consistent total order",
		},
		{
			name: "iriw-allowed-readers-agree",
			h: hb(
				w(0, x, 0, 1),
				w(1, y, 0, 2),
				r(2, x, 1), r(2, y, 0),
				r(3, y, 2), r(3, x, 1),
			),
			want: VerdictOK,
		},
		{
			name: "wrc-forbidden",
			h: hb(
				w(0, x, 0, 1),
				r(1, x, 1), w(1, y, 0, 2),
				r(2, y, 2), r(2, x, 0),
			),
			want:  VerdictViolation,
			holds: "no sequentially consistent total order",
		},
		{
			name: "corr-forbidden-back-in-time",
			h: hb(
				w(0, x, 0, 1),
				r(1, x, 1), r(1, x, 0),
			),
			want:    VerdictViolation,
			holds:   "traveled back in time",
			perAddr: true,
		},
		{
			name: "coww-forbidden-lost-update",
			h: hb(
				w(0, x, 0, 1),
				w(1, x, 0, 2),
			),
			want:    VerdictViolation,
			holds:   "lost update",
			perAddr: true,
		},
		{
			name: "read-of-unwritten-value",
			h: hb(
				w(0, x, 0, 1),
				r(1, x, 7),
			),
			want:    VerdictViolation,
			holds:   "no write produced",
			perAddr: true,
		},
		{
			name: "empty",
			h:    NewHistory(),
			want: VerdictOK,
		},
		{
			name: "single-proc-sequential",
			h: hb(
				w(0, x, 0, 1), r(0, x, 1), w(0, y, 0, 2), r(0, y, 2), w(0, x, 1, 3), r(0, x, 3),
			),
			want: VerdictOK,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Check(tc.h, Options{})
			if res.Verdict != tc.want {
				t.Fatalf("verdict = %s, want %s (reason %q)", res.Verdict, tc.want, res.Reason)
			}
			if tc.want == VerdictViolation && !strings.Contains(res.Reason, tc.holds) {
				t.Fatalf("reason %q does not contain %q", res.Reason, tc.holds)
			}
			if tc.want == VerdictOK && tc.h.Len() > 0 {
				verifyWitness(t, tc.h, res.Order)
			}
			cohErr := tc.h.CheckCoherence()
			if tc.perAddr && cohErr == nil {
				t.Fatalf("expected CheckCoherence to already reject this history")
			}
			if !tc.perAddr && cohErr != nil && tc.want != VerdictViolation {
				t.Fatalf("CheckCoherence rejected an SC history: %v", cohErr)
			}
		})
	}
}

func TestMalformedHistories(t *testing.T) {
	const x = 1
	if err := hb(w(0, x, 0, 0)).CheckCoherence(); err == nil || !strings.Contains(err.Error(), "reserved initial value") {
		t.Fatalf("write of 0 not rejected: %v", err)
	}
	// A duplicated write value would make the old-value chain cyclic;
	// the guard must reject it rather than loop.
	dup := hb(w(0, x, 0, 1), w(0, x, 1, 2), w(0, x, 2, 1))
	if err := dup.CheckCoherence(); err == nil || !strings.Contains(err.Error(), "same value") {
		t.Fatalf("duplicate write value not rejected: %v", err)
	}
	if res := Check(dup, Options{}); res.Verdict != VerdictViolation {
		t.Fatalf("Check accepted a cyclic write chain: %+v", res)
	}
}

func TestUndecidedOnBudget(t *testing.T) {
	// Independent single-address processors: hugely concurrent, so a
	// one-node budget must trip before the search can conclude anything.
	h := NewHistory()
	for p := 0; p < 4; p++ {
		addr := uint64(100 + p)
		var prev uint64
		for i := 0; i < 4; i++ {
			val := uint64(1 + p*10 + i)
			h.Write(p, addr, prev, val)
			h.Read(p, addr, val)
			prev = val
		}
	}
	res := Check(h, Options{MaxNodes: 1})
	if res.Verdict != VerdictUndecided {
		t.Fatalf("verdict = %s, want undecided", res.Verdict)
	}
	// With the default budget the same history is decidedly SC.
	res = Check(h, Options{})
	if res.Verdict != VerdictOK {
		t.Fatalf("verdict = %s, want OK (reason %q)", res.Verdict, res.Reason)
	}
	verifyWitness(t, h, res.Order)
}

func TestLitmusLibrary(t *testing.T) {
	tests := LitmusTests()
	if len(tests) != 7 {
		t.Fatalf("expected 7 litmus tests, got %d", len(tests))
	}
	seen := map[string]bool{}
	for _, l := range tests {
		if seen[l.Name] {
			t.Fatalf("duplicate litmus name %q", l.Name)
		}
		seen[l.Name] = true
		if l.Vars < 1 || len(l.Procs) < 2 || l.Doc == "" {
			t.Fatalf("litmus %q is malformed: %+v", l.Name, l)
		}
		for _, prog := range l.Procs {
			for _, op := range prog {
				if op.Var < 0 || op.Var >= l.Vars {
					t.Fatalf("litmus %q references var %d outside [0,%d)", l.Name, op.Var, l.Vars)
				}
			}
		}
		got, ok := LitmusByName(l.Name)
		if !ok || got.Name != l.Name {
			t.Fatalf("LitmusByName(%q) failed", l.Name)
		}
	}
	if _, ok := LitmusByName("nope"); ok {
		t.Fatalf("LitmusByName accepted an unknown name")
	}
}
