package memmodel

import (
	"encoding/binary"
	"fmt"
)

// Verdict is the outcome of a sequential-consistency check.
type Verdict uint8

const (
	// VerdictOK: a witness total order exists; the history is
	// sequentially consistent.
	VerdictOK Verdict = iota
	// VerdictViolation: no witness total order exists (or per-address
	// coherence already fails); the history is provably not
	// sequentially consistent.
	VerdictViolation
	// VerdictUndecided: the node budget was exhausted before the search
	// either found a witness or ruled one out.
	VerdictUndecided
)

var verdictNames = [...]string{"OK", "violation", "undecided"}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("Verdict(%d)", uint8(v))
}

// Options bound a sequential-consistency check.
type Options struct {
	// MaxNodes caps the number of search states the backtracking
	// interleaving search may expand before giving up with
	// VerdictUndecided. Zero means the default of 1<<20. The memoized
	// state space is bounded by the product over processors of
	// (program length + 1), so litmus-sized histories exhaust in tens
	// of nodes and even multi-hundred-event histories stay far below
	// the default.
	MaxNodes int
}

func (o *Options) fillDefaults() {
	if o.MaxNodes == 0 {
		o.MaxNodes = 1 << 20
	}
}

// Result reports a sequential-consistency check.
type Result struct {
	Verdict Verdict
	// Reason describes the violation (empty for OK/undecided).
	Reason string
	// Nodes is the number of search states expanded.
	Nodes int
	// Order, for VerdictOK, is a witness: indices into the history's
	// Events() forming a total order under which every read returns the
	// most recent write to its address (nil for the empty history).
	Order []int
}

// Check decides whether the history is sequentially consistent: whether
// a single total order of all events exists that respects each
// processor's program order and in which every read of an address
// returns the value of the most recent preceding write to it (or the
// initial value 0). Per-address coherence is checked first — it is
// cheap, its failures carry sharper diagnostics, and it pins each
// address's write order so the cross-address search only has to order
// events *between* addresses.
//
// The search walks frontiers (one next-event index per processor) with
// reads-from and write-order constraint propagation deciding which
// events are enabled, memoizing visited frontiers so each is expanded
// at most once. It is exact within the node budget: VerdictOK and
// VerdictViolation are proofs, VerdictUndecided means the budget ran
// out first.
func Check(h *History, opts Options) Result {
	opts.fillDefaults()
	pos, err := h.writeOrders()
	if err != nil {
		return Result{Verdict: VerdictViolation, Reason: err.Error()}
	}
	if len(h.events) == 0 {
		return Result{Verdict: VerdictOK}
	}

	s := newSCSearch(h, pos, opts.MaxNodes)
	switch found, cut := s.dfs(); {
	case found:
		return Result{Verdict: VerdictOK, Nodes: s.nodes, Order: s.order}
	case cut:
		return Result{Verdict: VerdictUndecided, Nodes: s.nodes}
	default:
		return Result{
			Verdict: VerdictViolation,
			Reason: fmt.Sprintf("no sequentially consistent total order exists over the %d events (%d frontiers searched)",
				len(h.events), s.nodes),
			Nodes: s.nodes,
		}
	}
}

// scSearch is one backtracking interleaving search. The state is the
// frontier vector idx (next unplaced event per processor); the number
// of writes placed per address is a pure function of the frontier, so
// memoizing frontiers loses nothing.
type scSearch struct {
	perProc [][]int // event indices per processor, program order
	// need is, per event, the precomputed enabling condition on its
	// address's placed-write count: a read of a value at position p
	// needs exactly p writes placed (it must follow write p and precede
	// write p+1); the write producing position p needs exactly p-1.
	need    []int
	isWrite []bool
	addrID  []int // dense address ids

	idx    []int
	placed []int
	order  []int
	nodes  int
	max    int

	visited map[string]struct{}
	key     []byte
}

func newSCSearch(h *History, pos map[uint64]map[uint64]int, maxNodes int) *scSearch {
	n := len(h.events)
	s := &scSearch{
		need:    make([]int, n),
		isWrite: make([]bool, n),
		addrID:  make([]int, n),
		max:     maxNodes,
		visited: make(map[string]struct{}),
	}
	dense := make(map[uint64]int)
	nproc := h.Procs()
	s.perProc = make([][]int, nproc)
	for i, e := range h.events {
		id, ok := dense[e.Addr]
		if !ok {
			id = len(dense)
			dense[e.Addr] = id
		}
		s.addrID[i] = id
		s.isWrite[i] = e.Write
		p := 0
		if m := pos[e.Addr]; m != nil {
			p = m[e.Value] // writeOrders proved membership
		}
		if e.Write {
			s.need[i] = p - 1
		} else {
			s.need[i] = p
		}
		s.perProc[e.Proc] = append(s.perProc[e.Proc], i)
	}
	s.idx = make([]int, nproc)
	s.placed = make([]int, len(dense))
	s.order = make([]int, 0, n)
	s.key = make([]byte, 2*nproc)
	return s
}

// dfs explores from the current frontier. It returns (found, cut):
// found means a complete witness order is in s.order; cut means the
// node budget fired somewhere below, so a false result is not a proof.
func (s *scSearch) dfs() (bool, bool) {
	if len(s.order) == len(s.need) {
		return true, false
	}
	// Encode the frontier; bail if an earlier branch already explored it.
	k := s.frontierKey()
	if _, ok := s.visited[k]; ok {
		return false, false
	}
	s.visited[k] = struct{}{}
	if s.nodes++; s.nodes > s.max {
		return false, true
	}
	cut := false
	for p := range s.perProc {
		ids := s.perProc[p]
		if s.idx[p] >= len(ids) {
			continue
		}
		ev := ids[s.idx[p]]
		if s.placed[s.addrID[ev]] != s.need[ev] {
			continue
		}
		// Place the event and recurse.
		s.idx[p]++
		if s.isWrite[ev] {
			s.placed[s.addrID[ev]]++
		}
		s.order = append(s.order, ev)
		found, c := s.dfs()
		if found {
			return true, false
		}
		cut = cut || c
		s.order = s.order[:len(s.order)-1]
		if s.isWrite[ev] {
			s.placed[s.addrID[ev]]--
		}
		s.idx[p]--
	}
	return false, cut
}

func (s *scSearch) frontierKey() string {
	b := s.key[:0]
	for _, i := range s.idx {
		b = binary.LittleEndian.AppendUint16(b, uint16(i))
	}
	s.key = b
	return string(b)
}
