// Package memmodel checks whole-machine execution histories against the
// memory consistency model the Multicube promises its programmers: a
// single coherent shared memory, i.e. sequential consistency. It is the
// memory-model-level companion to the protocol-level model checker in
// internal/mc — the protocol can be bug-free at the level of individual
// cache lines while the machine still reorders operations on *different*
// lines in ways no interleaved execution could produce (an invalidation
// broadcast racing a read reply on another line, for instance), and only
// a cross-address check catches that.
//
// The package is deliberately free of machine dependencies. A History is
// a flat log of completed read/write events, each carrying the issuing
// processor, the address, and the observed value (writes also record the
// value they overwrote, which pins down each address's write order
// without any searching). Capture adapters live with the machines:
// internal/mc records histories during model-checked executions, and
// internal/core's RecordingMem wraps a processor for timed DES runs.
//
// Two checks are offered:
//
//   - CheckCoherence: per-address coherence only — every address's
//     writes form a single total order and each processor observes
//     non-decreasing positions in it. This is the witness the model
//     checker has always applied, relocated here.
//   - Check: full sequential consistency — a backtracking search for a
//     single total order of ALL events that respects program order,
//     each address's write order, and every read's reads-from edge. The
//     search memoizes explored frontiers, so it is exact on
//     litmus-sized histories and counterexample prefixes; a node budget
//     turns pathological blowups into an explicit Undecided verdict
//     rather than an open-ended stall.
//
// The litmus sub-library expresses the classic shapes (SB/Dekker, MP,
// LB, WRC, IRIW, CoRR, CoWW) once; internal/mc compiles them to bounded
// model-checking scenarios and internal/workload compiles them to timed
// DES stress programs, with this package judging the histories of both.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package memmodel

import "fmt"

// Event is one completed memory operation in a history.
type Event struct {
	// Proc identifies the issuing processor; program order within a
	// processor is the order its events appear in the history.
	Proc int
	// Addr is the memory location. Units are the capturer's choice (the
	// model checker records cache lines, the DES recorder word
	// addresses); the checker only compares addresses for equality.
	Addr uint64
	// Write is true for a write of Value overwriting Old, false for a
	// read observing Value.
	Write bool
	// Value is the value written or observed. Writes must store values
	// that are nonzero and unique per address (the initial contents of
	// every address is 0); the capture adapters guarantee this.
	Value uint64
	// Old is the value a write observed in place before overwriting —
	// the edge that chains each address's writes into a total order.
	Old uint64
}

func (e Event) String() string {
	if e.Write {
		return fmt.Sprintf("P%d W[%d]=%d (over %d)", e.Proc, e.Addr, e.Value, e.Old)
	}
	return fmt.Sprintf("P%d R[%d]=%d", e.Proc, e.Addr, e.Value)
}

// History is a log of completed memory events in observation order.
// Events of one processor must appear in its program order; events of
// different processors may interleave arbitrarily. The zero value is an
// empty history ready for use.
type History struct {
	events []Event
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Read appends a read event: proc observed val at addr.
func (h *History) Read(proc int, addr, val uint64) {
	h.events = append(h.events, Event{Proc: proc, Addr: addr, Value: val})
}

// Write appends a write event: proc overwrote old with val at addr.
func (h *History) Write(proc int, addr, old, val uint64) {
	h.events = append(h.events, Event{Proc: proc, Addr: addr, Write: true, Value: val, Old: old})
}

// Append appends an arbitrary event.
func (h *History) Append(e Event) { h.events = append(h.events, e) }

// Events returns the underlying event log in observation order. The
// slice is owned by the history; callers must not modify it.
func (h *History) Events() []Event { return h.events }

// Len returns the event count.
func (h *History) Len() int { return len(h.events) }

// Procs returns the number of processors appearing in the history
// (max Proc + 1).
func (h *History) Procs() int {
	n := 0
	for _, e := range h.events {
		if e.Proc+1 > n {
			n = e.Proc + 1
		}
	}
	return n
}

// Reset empties the history, retaining capacity.
func (h *History) Reset() { h.events = h.events[:0] }

// String renders the history one event per line, in observation order.
func (h *History) String() string {
	var b []byte
	for _, e := range h.events {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}
