package memmodel

import (
	"fmt"
	"sort"
)

// Per-address coherence is the property every cache-coherence protocol
// must provide: for each address, all writes form a single total order,
// and each processor's reads and writes of that address observe
// non-decreasing positions in it.
//
// Every write stores a unique value and records the value it overwrote,
// so the write order is recovered as a chain rooted at the initial value
// 0: each write's predecessor is the value it observed. Two writes
// observing the same predecessor is a lost update; a read observing a
// value no write produced is data corruption; a processor observing
// positions out of order saw the address travel back in time.
//
// The message wording below is stable: internal/mc has reported these
// exact strings since its witness was introduced, and its counterexample
// regression tests depend on them.

// CheckCoherence validates per-address coherence; it returns nil when
// every address's history is coherent, else an error describing the
// first violation found.
func (h *History) CheckCoherence() error {
	_, err := h.writeOrders()
	return err
}

// writeOrders recovers each address's total write order from the
// old-value chains and validates per-processor monotonicity over it. It
// returns, per address, the position of every value in that order (the
// initial value 0 has position 0). Addresses nobody wrote are absent;
// reads of them must observe 0.
func (h *History) writeOrders() (map[uint64]map[uint64]int, error) {
	// Chain the writes per address: successor[old value] = new value.
	type link struct {
		val  uint64
		proc int
	}
	succ := make(map[uint64]map[uint64]link) // addr -> old -> next
	written := make(map[uint64]map[uint64]bool)
	for _, e := range h.events {
		if !e.Write {
			continue
		}
		// Malformed-history guards (the capture adapters never produce
		// these, but hand-written and fuzzed histories can): value 0 is
		// reserved for initial memory, and a duplicated value would turn
		// the chain walk below into a cycle.
		if e.Value == 0 {
			return nil, fmt.Errorf("line %d: proc %d wrote the reserved initial value 0", e.Addr, e.Proc)
		}
		w := written[e.Addr]
		if w == nil {
			w = make(map[uint64]bool)
			written[e.Addr] = w
		}
		if w[e.Value] {
			return nil, fmt.Errorf("line %d: two writes stored the same value %d", e.Addr, e.Value)
		}
		w[e.Value] = true
		m := succ[e.Addr]
		if m == nil {
			m = make(map[uint64]link)
			succ[e.Addr] = m
		}
		if prev, ok := m[e.Old]; ok {
			return nil, fmt.Errorf("line %d: lost update — writes %d (proc %d) and %d (proc %d) both overwrote value %d",
				e.Addr, prev.val, prev.proc, e.Value, e.Proc, e.Old)
		}
		m[e.Old] = link{val: e.Value, proc: e.Proc}
	}
	// Walk each chain from the initial value 0 to assign positions.
	// Addresses are visited in sorted order: when several are corrupt,
	// which violation gets reported must not depend on map iteration
	// (internal/mc compares counterexample messages textually).
	pos := make(map[uint64]map[uint64]int) // addr -> value -> position
	addrs := make([]uint64, 0, len(succ))
	for addr := range succ {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		m := succ[addr]
		p := map[uint64]int{0: 0}
		v, i := uint64(0), 0
		for {
			nxt, ok := m[v]
			if !ok {
				break
			}
			i++
			p[nxt.val] = i
			v = nxt.val
		}
		if len(p) != len(m)+1 {
			// Some write's predecessor is neither 0 nor another write:
			// it observed a value that never existed. Report the smallest
			// dangling predecessor, deterministically.
			olds := make([]uint64, 0, len(m))
			for old := range m {
				olds = append(olds, old)
			}
			sort.Slice(olds, func(i, j int) bool { return olds[i] < olds[j] })
			for _, old := range olds {
				if _, ok := p[old]; !ok {
					nxt := m[old]
					return nil, fmt.Errorf("line %d: write %d (proc %d) overwrote value %d, which no write produced",
						addr, nxt.val, nxt.proc, old)
				}
			}
		}
		pos[addr] = p
	}
	// Per-processor monotonicity over each address's chain.
	type key struct {
		proc int
		addr uint64
	}
	last := make(map[key]int)
	for _, e := range h.events {
		p := pos[e.Addr]
		if p == nil {
			p = map[uint64]int{0: 0}
		}
		i, ok := p[e.Value]
		if !ok {
			return nil, fmt.Errorf("line %d: proc %d read value %d, which no write produced", e.Addr, e.Proc, e.Value)
		}
		k := key{proc: e.Proc, addr: e.Addr}
		if prev, seen := last[k]; seen {
			if e.Write && i <= prev {
				return nil, fmt.Errorf("line %d: proc %d wrote position %d after observing position %d", e.Addr, e.Proc, i, prev)
			}
			if !e.Write && i < prev {
				return nil, fmt.Errorf("line %d: proc %d read position %d (value %d) after observing position %d — the line traveled back in time",
					e.Addr, e.Proc, i, e.Value, prev)
			}
		}
		last[k] = i
	}
	return pos, nil
}
