package memmodel

// The classic litmus tests, expressed once over abstract variables.
// Drivers compile them to real machines: internal/mc turns each into a
// bounded model-checking scenario (exploring EVERY interleaving and
// checking every completed history for sequential consistency, which
// subsumes checking the test's forbidden outcome), and internal/workload
// turns each into a timed DES stress program whose captured history the
// checker judges per seed.
//
// Write values in the abstract tests are symbolic; drivers substitute
// machine-unique nonzero values, which preserves every ordering property
// the tests probe.

// LitmusOp is one step of a litmus-test thread.
type LitmusOp struct {
	// Write selects a store of a fresh value to Var; otherwise the op is
	// a load of Var.
	Write bool
	// Var is the abstract variable index (0 = x, 1 = y, ...).
	Var int
}

// Litmus is one litmus test: a handful of threads, each a short
// straight-line program over a few shared variables, probing one classic
// reordering that sequential consistency forbids.
type Litmus struct {
	Name string
	// Doc states the shape and the outcome SC forbids.
	Doc string
	// Vars is the number of distinct shared variables.
	Vars int
	// Procs holds one program per thread.
	Procs [][]LitmusOp
}

// TotalOps returns the summed program length.
func (l Litmus) TotalOps() int {
	n := 0
	for _, p := range l.Procs {
		n += len(p)
	}
	return n
}

func lr(v int) LitmusOp { return LitmusOp{Var: v} }
func lw(v int) LitmusOp { return LitmusOp{Write: true, Var: v} }

// LitmusTests returns the built-in litmus suite. The order is stable;
// names are lower-case and unique.
func LitmusTests() []Litmus {
	const x, y = 0, 1
	return []Litmus{
		{
			Name: "sb",
			Doc:  "store buffering (Dekker): P0: Wx;Ry  P1: Wy;Rx — SC forbids both reads returning the initial value",
			Vars: 2,
			Procs: [][]LitmusOp{
				{lw(x), lr(y)},
				{lw(y), lr(x)},
			},
		},
		{
			Name: "mp",
			Doc:  "message passing: P0: Wx;Wy  P1: Ry;Rx — SC forbids seeing the flag (y) but not the data (x)",
			Vars: 2,
			Procs: [][]LitmusOp{
				{lw(x), lw(y)},
				{lr(y), lr(x)},
			},
		},
		{
			Name: "lb",
			Doc:  "load buffering: P0: Rx;Wy  P1: Ry;Wx — SC forbids both loads observing the other thread's later store",
			Vars: 2,
			Procs: [][]LitmusOp{
				{lr(x), lw(y)},
				{lr(y), lw(x)},
			},
		},
		{
			Name: "wrc",
			Doc:  "write-to-read causality: P0: Wx  P1: Rx;Wy  P2: Ry;Rx — SC forbids P2 seeing y but stale x after P1 saw x",
			Vars: 2,
			Procs: [][]LitmusOp{
				{lw(x)},
				{lr(x), lw(y)},
				{lr(y), lr(x)},
			},
		},
		{
			Name: "iriw",
			Doc:  "independent reads of independent writes: P0: Wx  P1: Wy  P2: Rx;Ry  P3: Ry;Rx — SC forbids the two readers disagreeing on the write order",
			Vars: 2,
			Procs: [][]LitmusOp{
				{lw(x)},
				{lw(y)},
				{lr(x), lr(y)},
				{lr(y), lr(x)},
			},
		},
		{
			Name: "corr",
			Doc:  "coherent read-read: P0: Wx  P1: Rx;Rx — coherence forbids reading the new value then the old one",
			Vars: 1,
			Procs: [][]LitmusOp{
				{lw(x)},
				{lr(x), lr(x)},
			},
		},
		{
			Name: "coww",
			Doc:  "coherent write-write: P0: Wx;Wx  P1: Rx;Rx — coherence forbids observing the two writes out of order",
			Vars: 1,
			Procs: [][]LitmusOp{
				{lw(x), lw(x)},
				{lr(x), lr(x)},
			},
		},
	}
}

// LitmusByName returns the named test from LitmusTests.
func LitmusByName(name string) (Litmus, bool) {
	for _, l := range LitmusTests() {
		if l.Name == name {
			return l, true
		}
	}
	return Litmus{}, false
}
