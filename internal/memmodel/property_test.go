package memmodel

import (
	"testing"
)

// splitmix64, locally: internal/workload has the canonical copy, but
// importing it here would cycle once workload drives litmus programs
// through this package.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }

// buildSC generates a history by construction: it simulates one legal
// sequentially consistent interleaving against a sequential memory, so
// the result is SC by definition and the checker must accept it.
func buildSC(rng *splitmix, nproc, naddr, totalOps int) *History {
	h := NewHistory()
	mem := make([]uint64, naddr)
	nextVal := uint64(1)
	remaining := make([]int, nproc)
	left := 0
	for p := range remaining {
		remaining[p] = totalOps / nproc
		left += remaining[p]
	}
	for left > 0 {
		p := rng.intn(nproc)
		if remaining[p] == 0 {
			continue
		}
		remaining[p]--
		left--
		a := rng.intn(naddr)
		addr := uint64(100 + a)
		if rng.next()&1 == 0 {
			h.Write(p, addr, mem[a], nextVal)
			mem[a] = nextVal
			nextVal++
		} else {
			h.Read(p, addr, mem[a])
		}
	}
	return h
}

// checkSeed runs the by-construction property for one seed: the legal
// interleaving must be accepted with a replayable witness; corrupting
// one read must never be wrongly accepted.
func checkSeed(t *testing.T, seed uint64) {
	t.Helper()
	rng := &splitmix{s: seed}
	nproc := 2 + rng.intn(3)
	naddr := 1 + rng.intn(4)
	totalOps := nproc * (2 + rng.intn(6))
	h := buildSC(rng, nproc, naddr, totalOps)

	res := Check(h, Options{})
	if res.Verdict != VerdictOK {
		t.Fatalf("seed %#x: by-construction SC history rejected: %s (%s)", seed, res.Verdict, res.Reason)
	}
	verifyWitness(t, h, res.Order)

	// Collect the read positions and, per address, the written values.
	events := h.Events()
	var reads []int
	writtenBy := make(map[uint64][]uint64)
	for i, e := range events {
		if e.Write {
			writtenBy[e.Addr] = append(writtenBy[e.Addr], e.Value)
		} else {
			reads = append(reads, i)
		}
	}
	if len(reads) == 0 {
		return
	}

	// Mutation 1: point a read at a value nobody ever wrote. This breaks
	// per-address coherence, so the checker must reject outright.
	i := reads[rng.intn(len(reads))]
	mut := NewHistory()
	for j, e := range events {
		if j == i {
			e.Value = 1 << 40
		}
		mut.Append(e)
	}
	if got := Check(mut, Options{}); got.Verdict != VerdictViolation {
		t.Fatalf("seed %#x: read-of-ghost-value mutation accepted: %s", seed, got.Verdict)
	}

	// Mutation 2: point a read at a DIFFERENT value genuinely written to
	// its address. The result may or may not still be SC (another
	// interleaving can legitimise it) — the property is that an OK
	// verdict always comes with a replayable witness, i.e. the checker
	// never wrongly accepts.
	i = reads[rng.intn(len(reads))]
	var alt uint64
	found := false
	for _, v := range writtenBy[events[i].Addr] {
		if v != events[i].Value {
			alt, found = v, true
			break
		}
	}
	if !found {
		return
	}
	mut = NewHistory()
	for j, e := range events {
		if j == i {
			e.Value = alt
		}
		mut.Append(e)
	}
	switch got := Check(mut, Options{}); got.Verdict {
	case VerdictOK:
		verifyWitness(t, mut, got.Order)
	case VerdictViolation, VerdictUndecided:
		// Rejecting (or giving up within budget) is always sound here.
	}
}

func TestSCByConstruction(t *testing.T) {
	rng := &splitmix{s: 0x5ca1ab1e}
	for i := 0; i < 300; i++ {
		checkSeed(t, rng.next())
	}
}

func FuzzSCByConstruction(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0xdeadbeef))
	f.Add(uint64(0x5ca1ab1e))
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkSeed(t, seed)
	})
}
