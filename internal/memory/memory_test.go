package memory

import (
	"testing"
	"testing/quick"
)

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewStore(16); err != nil {
		t.Errorf("NewStore(16): %v", err)
	}
}

func TestZeroFilledAndValidByDefault(t *testing.T) {
	s := MustNewStore(4)
	if !s.Valid(123) {
		t.Error("untouched line not valid")
	}
	got := s.Read(123)
	if len(got) != 4 {
		t.Fatalf("Read returned %d words", len(got))
	}
	for i, w := range got {
		if w != 0 {
			t.Errorf("word %d = %d, want 0", i, w)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := MustNewStore(4)
	s.Write(7, []uint64{1, 2, 3, 4})
	got := s.Read(7)
	for i, want := range []uint64{1, 2, 3, 4} {
		if got[i] != want {
			t.Errorf("word %d = %d, want %d", i, got[i], want)
		}
	}
	// Short writes zero-extend.
	s.Write(7, []uint64{9})
	got = s.Read(7)
	if got[0] != 9 || got[1] != 0 {
		t.Errorf("short write: %v", got)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := MustNewStore(2)
	s.Write(1, []uint64{5, 5})
	got := s.Read(1)
	got[0] = 99
	if s.Read(1)[0] != 5 {
		t.Error("Read exposed internal storage")
	}
}

func TestValidBitLifecycle(t *testing.T) {
	s := MustNewStore(2)
	s.Invalidate(3)
	if s.Valid(3) {
		t.Fatal("line valid after Invalidate")
	}
	if s.InvalidLines() != 1 {
		t.Fatalf("InvalidLines = %d", s.InvalidLines())
	}
	s.Write(3, []uint64{1})
	if !s.Valid(3) {
		t.Fatal("Write did not set valid bit")
	}
	if s.InvalidLines() != 0 {
		t.Fatalf("InvalidLines = %d after write", s.InvalidLines())
	}
}

func TestStats(t *testing.T) {
	s := MustNewStore(2)
	s.Write(1, nil)
	s.Read(1)
	s.Read(2)
	s.Invalidate(1)
	s.CountReissue()
	got := s.Stats()
	want := Stats{Reads: 2, Writes: 1, Invalidates: 1, Reissues: 1}
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
	s.Peek(1) // Peek must not count
	if s.Stats().Reads != 2 {
		t.Error("Peek counted as a read")
	}
}

func TestPropertyLastWriteWins(t *testing.T) {
	s := MustNewStore(1)
	f := func(line uint16, a, b uint64) bool {
		l := Line(line)
		s.Write(l, []uint64{a})
		s.Write(l, []uint64{b})
		return s.Read(l)[0] == b && s.Valid(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
