// Package memory implements the main-memory storage substrate: a sparse
// word store with the per-line valid ("tag") bit of Section 3. In the
// Wisconsin Multicube, main memory is divided among the column buses and
// interleaved by line; each module holds only the lines whose home column
// it sits on. The single tag bit per line indicates whether the memory
// contents are current ("unmodified") or stale because some cache holds
// the line modified; it is what lets the protocol safely reissue requests
// that were routed to memory while the modified line tables were in an
// inconsistent state.
//
// The store is purely functional state: latency and bus behaviour are
// modeled by the coherence package's memory agent.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package memory

import (
	"fmt"
	"sort"
)

// Line addresses a coherency block.
type Line uint64

// Store is one memory module's contents. Lines are zero-filled and valid
// until written or invalidated, matching a machine that boots with memory
// owning every line.
type Store struct {
	blockWords int
	data       map[Line][]uint64
	invalid    map[Line]bool

	reads       uint64
	writes      uint64
	invalidates uint64
	reissues    uint64
}

// NewStore returns an empty module with the given block size in words.
func NewStore(blockWords int) (*Store, error) {
	if blockWords < 1 {
		return nil, fmt.Errorf("memory: block size %d words, need at least 1", blockWords)
	}
	return &Store{
		blockWords: blockWords,
		data:       make(map[Line][]uint64),
		invalid:    make(map[Line]bool),
	}, nil
}

// MustNewStore is NewStore but panics on error.
func MustNewStore(blockWords int) *Store {
	s, err := NewStore(blockWords)
	if err != nil {
		panic(err)
	}
	return s
}

// BlockWords returns the block size in words.
func (s *Store) BlockWords() int { return s.blockWords }

// Valid reports the line's tag bit: true when memory holds the current
// value.
func (s *Store) Valid(line Line) bool { return !s.invalid[line] }

// Read returns a copy of the line's contents. Reading an invalid line is
// the caller's protocol error; the store returns the stale words, exactly
// as the hardware would.
func (s *Store) Read(line Line) []uint64 {
	s.reads++
	out := make([]uint64, s.blockWords)
	copy(out, s.data[line])
	return out
}

// Peek is Read without statistics, for invariant checkers.
func (s *Store) Peek(line Line) []uint64 {
	out := make([]uint64, s.blockWords)
	copy(out, s.data[line])
	return out
}

// Write stores data (zero-extended to a block) and sets the valid bit —
// the protocol's "write memory line and mark line valid".
func (s *Store) Write(line Line, data []uint64) {
	s.writes++
	buf, ok := s.data[line]
	if !ok {
		buf = make([]uint64, s.blockWords)
		s.data[line] = buf
	}
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, data)
	delete(s.invalid, line)
}

// Invalidate clears the valid bit — the line is now modified in some
// cache and the memory copy is stale.
func (s *Store) Invalidate(line Line) {
	s.invalidates++
	s.invalid[line] = true
}

// CountReissue records that a request arrived for an invalid line and was
// retransmitted (the robustness path of Section 3).
func (s *Store) CountReissue() { s.reissues++ }

// Stats reports module activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	Invalidates uint64
	Reissues    uint64
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{Reads: s.reads, Writes: s.writes, Invalidates: s.invalidates, Reissues: s.reissues}
}

// InvalidLines returns the number of lines currently marked invalid.
func (s *Store) InvalidLines() int { return len(s.invalid) }

// ForEach visits, in ascending line order, every line whose state differs
// from the boot state (all-zero contents, valid). State fingerprints in
// the model checker are built from this, so a line written back to zero
// is indistinguishable from one never written — exactly the semantics of
// the zero-filled store.
func (s *Store) ForEach(fn func(line Line, valid bool, data []uint64)) {
	lines := make([]Line, 0, len(s.data)+len(s.invalid))
	seen := make(map[Line]bool, len(s.data)+len(s.invalid))
	add := func(l Line) {
		if !seen[l] {
			seen[l] = true
			lines = append(lines, l)
		}
	}
	//multicube:detrange-ok keys feed the sort below via add
	for l := range s.data {
		add(l)
	}
	//multicube:detrange-ok keys feed the sort below via add
	for l := range s.invalid {
		add(l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		valid := !s.invalid[l]
		data := s.data[l]
		if valid {
			zero := true
			for _, w := range data {
				if w != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
		}
		buf := make([]uint64, s.blockWords)
		copy(buf, data)
		fn(l, valid, buf)
	}
}
