// Package mlt implements the modified line table of Section 3: an
// auxiliary tag store, one per processor, recording the addresses of all
// lines held in modified mode by caches in that processor's column. All
// tables in a column are kept identical by column-bus INSERT and REMOVE
// side effects, so a row-bus request can be routed to the column holding
// the modified line.
//
// The table is finite; on overflow the displaced line must be written back
// to main memory and changed to global state unmodified (footnote 7 —
// "this is why the modified line table is likely to be implemented as a
// cache"). Replacement is deterministic (LRU over insertions), so that
// every table in a column evicts the same entry for the same operation
// sequence — the property the protocol's overflow handling relies on.
// The package participates in the explorer's determinism contract: no
// wall clock, no map-order dependence, no scheduling outside the chooser
// seam. multicube-vet enforces this (see internal/analysis).
//
//multicube:deterministic
package mlt

import (
	"fmt"
	"sort"
)

// Line addresses a coherency block; it matches cache.Line.
type Line uint64

// Config sizes a table. Entries == 0 means unbounded (no overflow).
type Config struct {
	Entries int
	Assoc   int // 0 with nonzero Entries means fully associative
}

func (c Config) validate() error {
	if c.Entries < 0 {
		return fmt.Errorf("mlt: negative entry count %d", c.Entries)
	}
	if c.Entries > 0 {
		assoc := c.Assoc
		if assoc == 0 {
			assoc = c.Entries
		}
		if assoc < 1 || c.Entries%assoc != 0 {
			return fmt.Errorf("mlt: %d entries not divisible by associativity %d", c.Entries, assoc)
		}
	}
	return nil
}

type entry struct {
	line  Line
	used  uint64
	valid bool
}

// Table is one modified line table.
type Table struct {
	cfg   Config
	sets  [][]entry
	table map[Line]struct{}
	clock uint64

	inserts   uint64
	removes   uint64
	failures  uint64
	overflows uint64
}

// New returns an empty table.
func New(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Table{cfg: cfg}
	if cfg.Entries > 0 {
		assoc := cfg.Assoc
		if assoc == 0 {
			assoc = cfg.Entries
		}
		nsets := cfg.Entries / assoc
		t.sets = make([][]entry, nsets)
		for i := range t.sets {
			t.sets[i] = make([]entry, assoc)
		}
	} else {
		t.table = make(map[Line]struct{})
	}
	return t, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) bounded() bool { return t.cfg.Entries > 0 }

func (t *Table) setOf(line Line) []entry {
	return t.sets[uint64(line)%uint64(len(t.sets))]
}

// Contains reports whether line has an entry — the check a controller
// performs when snooping a row-bus request ("table entry found").
func (t *Table) Contains(line Line) bool {
	if !t.bounded() {
		_, ok := t.table[line]
		return ok
	}
	set := t.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true
		}
	}
	return false
}

// Insert adds line, returning the displaced line and true on overflow.
// Inserting a present line refreshes it and never overflows.
func (t *Table) Insert(line Line) (victim Line, overflow bool) {
	t.inserts++
	t.clock++
	if !t.bounded() {
		t.table[line] = struct{}{}
		return 0, false
	}
	set := t.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].used = t.clock
			return 0, false
		}
	}
	slot := -1
	for i := range set {
		if !set[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 0
		for i := 1; i < len(set); i++ {
			if set[i].used < set[slot].used {
				slot = i
			}
		}
		victim, overflow = set[slot].line, true
		t.overflows++
	}
	set[slot] = entry{line: line, used: t.clock, valid: true}
	return victim, overflow
}

// Remove deletes line, reporting whether an entry was found — the
// "remove failed" test that detects lost races in the protocol.
func (t *Table) Remove(line Line) bool {
	t.removes++
	if !t.bounded() {
		if _, ok := t.table[line]; ok {
			delete(t.table, line)
			return true
		}
		t.failures++
		return false
	}
	set := t.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i] = entry{}
			return true
		}
	}
	t.failures++
	return false
}

// Len reports the number of entries.
func (t *Table) Len() int {
	if !t.bounded() {
		return len(t.table)
	}
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Lines returns all entries in ascending order, for invariant checks.
func (t *Table) Lines() []Line {
	var out []Line
	if !t.bounded() {
		for l := range t.table {
			out = append(out, l)
		}
	} else {
		for _, set := range t.sets {
			for i := range set {
				if set[i].valid {
					out = append(out, set[i].line)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats reports operation counters.
type Stats struct {
	Inserts   uint64
	Removes   uint64
	Failures  uint64 // removes that found no entry (lost races)
	Overflows uint64
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	return Stats{Inserts: t.inserts, Removes: t.removes, Failures: t.failures, Overflows: t.overflows}
}

// Equal reports whether two tables hold exactly the same set of lines —
// the identical-within-a-column invariant.
func Equal(a, b *Table) bool {
	la, lb := a.Lines(), b.Lines()
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}
