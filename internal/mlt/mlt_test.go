package mlt

import (
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Entries: -1}); err == nil {
		t.Error("negative entries accepted")
	}
	if _, err := New(Config{Entries: 7, Assoc: 2}); err == nil {
		t.Error("non-divisible capacity accepted")
	}
	for _, cfg := range []Config{{}, {Entries: 8, Assoc: 2}, {Entries: 8}} {
		if _, err := New(cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

func TestInsertContainsRemove(t *testing.T) {
	tb := MustNew(Config{Entries: 8, Assoc: 2})
	if tb.Contains(5) {
		t.Fatal("empty table contains 5")
	}
	if _, ov := tb.Insert(5); ov {
		t.Fatal("first insert overflowed")
	}
	if !tb.Contains(5) {
		t.Fatal("inserted line missing")
	}
	if !tb.Remove(5) {
		t.Fatal("remove of present line failed")
	}
	if tb.Contains(5) {
		t.Fatal("line present after remove")
	}
	if tb.Remove(5) {
		t.Fatal("remove of absent line succeeded")
	}
	s := tb.Stats()
	if s.Inserts != 1 || s.Removes != 2 || s.Failures != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDuplicateInsertIsRefresh(t *testing.T) {
	tb := MustNew(Config{Entries: 4, Assoc: 2})
	tb.Insert(1)
	tb.Insert(1)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", tb.Len())
	}
}

func TestOverflowEvictsLRU(t *testing.T) {
	// Assoc 2, 2 sets: lines 0,2,4 share set 0.
	tb := MustNew(Config{Entries: 4, Assoc: 2})
	tb.Insert(0)
	tb.Insert(2)
	tb.Insert(0) // refresh: 2 becomes LRU
	victim, ov := tb.Insert(4)
	if !ov || victim != 2 {
		t.Fatalf("Insert(4) = (%d,%v), want (2,true)", victim, ov)
	}
	if tb.Contains(2) {
		t.Error("victim still present")
	}
	if tb.Stats().Overflows != 1 {
		t.Errorf("overflows = %d, want 1", tb.Stats().Overflows)
	}
}

func TestUnboundedNeverOverflows(t *testing.T) {
	tb := MustNew(Config{})
	for l := Line(0); l < 5000; l++ {
		if _, ov := tb.Insert(l); ov {
			t.Fatalf("unbounded table overflowed at %d", l)
		}
	}
	if tb.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", tb.Len())
	}
}

func TestLinesSorted(t *testing.T) {
	tb := MustNew(Config{Entries: 8, Assoc: 4})
	for _, l := range []Line{9, 1, 4, 2} {
		tb.Insert(l)
	}
	got := tb.Lines()
	want := []Line{1, 2, 4, 9}
	if len(got) != len(want) {
		t.Fatalf("Lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lines = %v, want %v", got, want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(Config{Entries: 8, Assoc: 2})
	b := MustNew(Config{Entries: 8, Assoc: 2})
	if !Equal(a, b) {
		t.Fatal("empty tables unequal")
	}
	a.Insert(3)
	if Equal(a, b) {
		t.Fatal("diverged tables reported equal")
	}
	b.Insert(3)
	if !Equal(a, b) {
		t.Fatal("same-content tables unequal")
	}
}

// Property: two tables fed the same operation sequence stay identical and
// evict the same victims — the column-consistency requirement.
func TestPropertyColumnDeterminism(t *testing.T) {
	f := func(ops []uint16) bool {
		a := MustNew(Config{Entries: 8, Assoc: 2})
		b := MustNew(Config{Entries: 8, Assoc: 2})
		for _, op := range ops {
			line := Line(op % 64)
			if op%3 == 0 {
				ra := a.Remove(line)
				rb := b.Remove(line)
				if ra != rb {
					return false
				}
			} else {
				va, oa := a.Insert(line)
				vb, ob := b.Insert(line)
				if oa != ob || va != vb {
					return false
				}
			}
		}
		return Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Len never exceeds capacity and Contains agrees with Lines.
func TestPropertyCapacityAndConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := MustNew(Config{Entries: 16, Assoc: 4})
		for _, op := range ops {
			tb.Insert(Line(op % 256))
		}
		if tb.Len() > 16 {
			return false
		}
		for _, l := range tb.Lines() {
			if !tb.Contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
