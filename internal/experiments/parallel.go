package experiments

import (
	"fmt"
	"runtime"
	"time"

	"multicube/internal/bus"
	"multicube/internal/core"
	"multicube/internal/mva"
	"multicube/internal/sim"
	"multicube/internal/stats"
	"multicube/internal/workload"
)

// This file measures the conservative parallel engine (sim.Runner): the
// wall-clock speedup of column-partitioned execution over the sequential
// kernel on identical workloads, and the machine-level bus arbitration
// ablation the engine shares its seam with.

// ParallelConfig parameterizes the speedup measurement.
type ParallelConfig struct {
	// N is the machine edge (N×N processors); default 8.
	N int
	// Requests per processor; default 2000 (the committed BENCH_sim.json
	// run uses 1e6 references machine-wide scaled to the grid).
	Requests int
	// Workers lists the parallel worker counts to measure; default
	// {1, 2, 4, 8}.
	Workers []int
	// Seed for the generator workload.
	Seed uint64
	// Reps is how many times each mode runs; the report keeps the best
	// wall time (standard noise rejection — the minimum is the run with
	// the least interference, and results are identical across reps by
	// construction). Default 3.
	Reps int
	// PShared is the shared-reference probability; default 0.01, the
	// mostly-private mix the paper's analysis rests on (the Multicube
	// scales because nearly all references hit private caches, keeping
	// bus requests per processor in the low per-millisecond range).
	// Sharing rate is also what bounds the engine's parallelism: every
	// row-bus transaction is a synchronization point.
	PShared float64
}

func (c *ParallelConfig) fill() {
	if c.N == 0 {
		c.N = 8
	}
	if c.Requests == 0 {
		c.Requests = 2000
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PShared == 0 {
		c.PShared = 0.01
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
}

// ParallelRun is one measured mode of the speedup experiment, the
// machine-readable row merged into BENCH_sim.json.
type ParallelRun struct {
	Mode         string  `json:"mode"` // "sequential" or "parallel-<w>"
	Workers      int     `json:"workers"`
	Events       uint64  `json:"events"`
	WallSec      float64 `json:"wall_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_sequential"`
	// Parallelism is the engine's available parallelism on this run:
	// total dispatched work over the critical path (serial boundary
	// steps plus each window's largest partition share). Wall-clock
	// speedup converges to min(workers, parallelism) given as many
	// cores; on fewer cores it is capped by the core count, which is
	// why the report records the host's CPU budget. Zero for the
	// sequential run.
	Parallelism  float64 `json:"available_parallelism,omitempty"`
	ElapsedSimNS uint64  `json:"elapsed_sim_ns"`
	Efficiency   float64 `json:"efficiency"`
	Identical    bool    `json:"identical_to_sequential"`
}

// ParallelReport is the full speedup measurement plus the analytic
// cross-check: the MVA model solved at the measured per-processor bus
// request rate must predict an efficiency close to the simulated one, in
// both modes (which are identical by construction — Identical is the
// per-run receipt).
type ParallelReport struct {
	Date     string  `json:"date"`
	N        int     `json:"n"`
	Requests int     `json:"requests_per_proc"`
	Seed     uint64  `json:"seed"`
	PShared  float64 `json:"p_shared"`
	// NumCPU and Gomaxprocs record the measuring host's CPU budget:
	// wall-clock speedup is capped by min(workers, cores), so on a
	// single-CPU host the honest wall numbers hover near 1.0 and the
	// available_parallelism column carries the scaling claim.
	NumCPU        int           `json:"num_cpu"`
	Gomaxprocs    int           `json:"gomaxprocs"`
	Runs          []ParallelRun `json:"runs"`
	MVAEfficiency float64       `json:"mva_efficiency_at_measured_rate"`
}

// MeasureParallel runs the same seeded workload on the sequential kernel
// and on the parallel engine at each worker count, comparing results and
// timing the wall clock.
func MeasureParallel(cfg ParallelConfig) ParallelReport {
	cfg.fill()
	wl := workload.GenConfig{
		Seed: cfg.Seed, Requests: cfg.Requests,
		PShared: cfg.PShared, PWrite: 0.3,
	}
	rep := ParallelReport{
		N: cfg.N, Requests: cfg.Requests, Seed: cfg.Seed, PShared: cfg.PShared,
		NumCPU: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0),
	}

	// Each mode runs Reps times; results are identical across reps (the
	// metrics string is asserted to repeat), so only the best wall time
	// is kept.
	run := func(workers int) (ParallelRun, string, sim.Time) {
		var r ParallelRun
		var metrics string
		var elapsed sim.Time
		for rep := 0; rep < cfg.Reps; rep++ {
			m := core.MustNew(core.Config{N: cfg.N, Parallel: workers})
			start := time.Now()
			wrep := workload.Run(m, wl)
			wall := time.Since(start)
			if rep > 0 {
				if s := m.Metrics().String(); s != metrics {
					panic(fmt.Sprintf("experiments: repetition diverged (workers=%d)", workers))
				}
				if wall.Seconds() < r.WallSec {
					r.WallSec = wall.Seconds()
				}
				continue
			}
			metrics, elapsed = m.Metrics().String(), wrep.Elapsed
			r = ParallelRun{
				Mode:         "sequential",
				Workers:      workers,
				Events:       m.Executed(),
				WallSec:      wall.Seconds(),
				ElapsedSimNS: uint64(wrep.Elapsed),
				Efficiency:   wrep.Efficiency(),
			}
			if workers > 0 {
				r.Mode = fmt.Sprintf("parallel-%d", m.Runner().Workers())
				r.Parallelism = m.Runner().Stats().Parallelism()
			}
		}
		r.EventsPerSec = float64(r.Events) / r.WallSec
		return r, metrics, elapsed
	}

	seq, seqMetrics, _ := run(0)
	seq.Identical = true
	seq.Speedup = 1
	rep.Runs = append(rep.Runs, seq)
	for _, w := range cfg.Workers {
		r, metrics, _ := run(w)
		r.Speedup = seq.WallSec / r.WallSec
		r.Identical = metrics == seqMetrics && r.Events == seq.Events &&
			r.ElapsedSimNS == seq.ElapsedSimNS
		rep.Runs = append(rep.Runs, r)
	}

	// Analytic cross-check: solve the paper's MVA model at the measured
	// request rate. The generator's mix differs from the Figure 2
	// parameterization, so agreement is approximate — the committed runs
	// record both numbers side by side.
	m := core.MustNew(core.Config{N: cfg.N})
	wrep := workload.Run(m, wl)
	p := mva.Defaults(cfg.N)
	if rate := wrep.BusRate(m.Processors()); rate > 0 {
		p.RequestRate = rate
	}
	rep.MVAEfficiency = mva.MustSolve(p).Efficiency
	return rep
}

// Parallel renders the speedup measurement as a table for multicube-bench.
func Parallel(cfg ParallelConfig) *stats.Table {
	cfg.fill()
	rep := MeasureParallel(cfg)
	t := stats.NewTable(
		fmt.Sprintf("Conservative parallel engine, %d×%d machine, %d refs/proc, %.0f%% shared (MVA efficiency %.3f, %d CPUs)",
			rep.N, rep.N, rep.Requests, 100*rep.PShared, rep.MVAEfficiency, rep.NumCPU),
		"mode", "events", "wall", "events_per_sec", "speedup", "parallelism", "identical")
	for _, r := range rep.Runs {
		par := "-"
		if r.Parallelism > 0 {
			par = fmt.Sprintf("%.2f", r.Parallelism)
		}
		t.AddRow(r.Mode, r.Events,
			fmt.Sprintf("%.3fs", r.WallSec),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.2f", r.Speedup),
			par,
			r.Identical)
	}
	return t
}

// ArbitrationMachine is the service-discipline ablation at machine level
// on the paper's 8×8 configuration: FCFS (the paper's model) against
// round-robin and fixed-priority grant order (the head-of-line policy of
// the arXiv:1004.3560 bus-arbitration study), identical workload per
// policy. The interesting measured result is that fixed priority wins on
// this closed-loop workload: a stable grant winner holds block ownership
// longer, cutting invalidation ping-pong (fewer row and column ops) and
// finishing sooner. The fairness cost doesn't bind here — every
// processor issues a fixed request count, so starvation surfaces as
// per-processor tail latency, not lost throughput.
func ArbitrationMachine(requests int) *stats.Table {
	if requests == 0 {
		requests = 300
	}
	t := stats.NewTable(
		"Bus arbitration on the 8×8 machine, shared-heavy workload",
		"policy", "efficiency", "elapsed", "row ops", "col ops", "req/ms/proc")
	for _, arb := range []bus.Arbitration{bus.FIFO, bus.RoundRobin, bus.Priority} {
		m := core.MustNew(core.Config{N: 8, Arbitration: arb})
		rep := workload.Run(m, workload.GenConfig{
			Seed: 5, Requests: requests,
			PShared: 0.8, PWrite: 0.4, SharedLines: 32,
		})
		mt := m.Metrics()
		t.AddRow(arb.String(), fmt.Sprintf("%.4f", rep.Efficiency()), rep.Elapsed,
			mt.RowBusOps, mt.ColBusOps, fmt.Sprintf("%.2f", rep.BusRate(m.Processors())))
	}
	return t
}
