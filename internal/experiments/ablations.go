package experiments

import (
	"strconv"

	"multicube/internal/bus"
	"multicube/internal/cache"
	"multicube/internal/coherence"
	"multicube/internal/core"
	"multicube/internal/mva"
	"multicube/internal/sim"
	"multicube/internal/stats"
	"multicube/internal/syncprim"
	"multicube/internal/topology"
	"multicube/internal/workload"
)

// This file holds the ablations DESIGN.md calls out beyond the paper's
// own figures: design choices the paper discusses qualitatively, measured
// on the simulator.

// Dimensions regenerates the Section 6 "future research" question with
// the generalized analytical model: ~1K processors built as n^k for
// several (n, k).
func Dimensions() *stats.Figure { return mva.DimensionSweep(nil) }

// Snarf measures the retained-tag snarf optimization of Section 3: with
// a read-heavy shared workload, bystanders that recently lost a line can
// re-acquire it from passing replies, cutting bus transactions.
func Snarf(requests int) *stats.Table {
	if requests == 0 {
		requests = 150
	}
	t := stats.NewTable(
		"Snarf ablation (Section 3): re-acquiring passing lines into retained tags",
		"snarf", "bus txns", "bus ops", "snarfs", "efficiency")
	for _, enabled := range []bool{false, true} {
		m := core.MustNew(core.Config{N: 4, BlockWords: 16, Snarf: enabled})
		rep := workload.Run(m, workload.GenConfig{
			Seed: 11, Think: 5 * sim.Microsecond, Exponential: true,
			PShared: 0.9, PWrite: 0.15, SharedLines: 8, PrivateLines: 4,
			Requests: requests,
		})
		mt := m.Metrics()
		var snarfs uint64
		for id := 0; id < m.Processors(); id++ {
			snarfs += m.Processor(id).Node().Cache().Stats().Snarfs
		}
		t.AddRow(enabled, rep.BusTransactions, mt.RowBusOps+mt.ColBusOps, snarfs, rep.Efficiency())
	}
	return t
}

// MLTSize sweeps the modified line table capacity (the paper's footnote
// 7: an undersized table forces modified lines back to memory — "this is
// why the modified line table is likely to be implemented as a cache").
func MLTSize(requests int) *stats.Table {
	if requests == 0 {
		requests = 150
	}
	t := stats.NewTable(
		"Modified line table sizing (footnote 7): overflow forces write-backs",
		"entries", "overflows", "memory writes", "efficiency")
	for _, entries := range []int{2, 4, 8, 16, 0} {
		m := core.MustNew(core.Config{N: 4, BlockWords: 16, MLTEntries: entries, MLTAssoc: 2})
		if entries == 0 {
			m = core.MustNew(core.Config{N: 4, BlockWords: 16})
		}
		rep := workload.Run(m, workload.GenConfig{
			Seed: 13, Think: 5 * sim.Microsecond, Exponential: true,
			PShared: 0.8, PWrite: 0.6, SharedLines: 48, PrivateLines: 4,
			Requests: requests,
		})
		var overflows uint64
		for id := 0; id < m.Processors(); id++ {
			overflows += m.Processor(id).Node().Table().Stats().Overflows
		}
		name := "unbounded"
		if entries > 0 {
			name = strconv.Itoa(entries)
		}
		t.AddRow(name, overflows, m.Metrics().MemoryWrites, rep.Efficiency())
	}
	return t
}

// FalseSharing measures the inefficiency Section 5 warns large coherency
// blocks invite: two processors alternately writing different words of
// the same block bounce it between their caches, versus the same writes
// to separate blocks.
func FalseSharing(iterations int) *stats.Table {
	if iterations == 0 {
		iterations = 60
	}
	t := stats.NewTable(
		"False sharing (Section 5): two writers, same vs separate coherency blocks",
		"layout", "bus ops", "ownership transfers", "elapsed")
	run := func(name string, addrA, addrB core.Addr) {
		m := core.MustNew(core.Config{N: 4, BlockWords: 16})
		m.Spawn(0, func(c *core.Ctx) {
			for i := 0; i < iterations; i++ {
				c.Store(addrA, uint64(i))
				c.Sleep(1 * sim.Microsecond)
			}
		})
		m.Spawn(15, func(c *core.Ctx) {
			for i := 0; i < iterations; i++ {
				c.Store(addrB, uint64(i))
				c.Sleep(1 * sim.Microsecond)
			}
		})
		elapsed := m.Run()
		mt := m.Metrics()
		transfers := mt.Txns[coherence.READMOD].Count
		t.AddRow(name, mt.RowBusOps+mt.ColBusOps, transfers, elapsed)
	}
	run("same block (false sharing)", 0, 1)
	run("separate blocks", 0, 16)
	return t
}

// Arbitration compares FIFO, round-robin and fixed-priority bus
// arbitration under a saturating workload (Section 5's "methods for
// reducing bus latency" design-issue list includes the bus controllers).
// This is the coherence-layer view; ArbitrationMachine (parallel.go)
// runs the same ablation at machine level on the paper's 8×8
// configuration, selectable from multicube-sim with -arb.
func Arbitration(requests int) *stats.Table {
	if requests == 0 {
		requests = 150
	}
	t := stats.NewTable(
		"Bus arbitration policy under heavy shared traffic",
		"policy", "efficiency", "mean row util", "max queued (bus 0)")
	for _, cfg := range []struct {
		name string
		arb  bus.Arbitration
	}{
		{"FIFO", bus.FIFO},
		{"round-robin", bus.RoundRobin},
		{"priority", bus.Priority},
	} {
		k := sim.NewKernel()
		sys := coherence.MustNewSystem(k, coherence.Config{
			N: 4, BlockWords: 16, Arbitration: cfg.arb,
		})
		rep := driveSystem(k, sys, requests)
		t.AddRow(cfg.name, rep.eff, rep.rowUtil, rep.maxQueued)
	}
	return t
}

type sysReport struct {
	eff       float64
	rowUtil   float64
	maxQueued int
}

// driveSystem runs a saturating random workload directly on a coherence
// system and measures efficiency the same way the generator does.
func driveSystem(k *sim.Kernel, s *coherence.System, requests int) sysReport {
	n := s.Config().N
	think := 3 * sim.Microsecond
	var thinkSum, stallSum sim.Time
	rng := workload.NewRand(29)
	var launch func(nd *coherence.Node, remaining int)
	launch = func(nd *coherence.Node, remaining int) {
		if remaining == 0 {
			return
		}
		d := sim.Time(rng.Exp(float64(think)))
		thinkSum += d
		k.After(d, func() {
			line := uint64(rng.Intn(24))
			issued := k.Now()
			done := func(coherence.Result) {
				stallSum += k.Now() - issued
				launch(nd, remaining-1)
			}
			if rng.Intn(2) == 0 {
				nd.Read(cacheLine(line), done)
			} else {
				nd.Write(cacheLine(line), done)
			}
		})
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			launch(s.Node(coord(r, c)), requests)
		}
	}
	k.Run()
	var rowUtil float64
	maxQ := 0
	for i := 0; i < n; i++ {
		rowUtil += s.RowBus(i).Utilization(k.Now()) / float64(n)
		if q := s.RowBus(i).Stats().MaxQueued; q > maxQ {
			maxQ = q
		}
	}
	return sysReport{
		eff:       float64(thinkSum) / float64(thinkSum+stallSum),
		rowUtil:   rowUtil,
		maxQueued: maxQ,
	}
}

func cacheLine(v uint64) cache.Line { return cache.Line(v) }

func coord(r, c int) topology.Coord { return topology.Coord{Row: r, Col: c} }

// SyncScaling sweeps the number of contenders for one lock, reporting
// bus operations per critical section for each primitive — the scaling
// argument behind Section 4: test-and-set traffic grows with contention
// while the queue's handoff cost stays flat.
func SyncScaling(critSections int) *stats.Table {
	if critSections == 0 {
		critSections = 6
	}
	t := stats.NewTable(
		"Lock bus operations per critical section vs contenders (4×4 machine)",
		"contenders", "test-and-set", "test-and-test-and-set", "SYNC queue")
	for _, contenders := range []int{2, 4, 8, 16} {
		row := []interface{}{contenders}
		for _, mk := range []func() syncprim.Locker{
			func() syncprim.Locker { return &syncprim.TASLock{Addr: 0} },
			func() syncprim.Locker { return &syncprim.TTSLock{Addr: 0} },
			func() syncprim.Locker { return &syncprim.QueueLock{Addr: 0} },
		} {
			m := core.MustNew(core.Config{N: 4, BlockWords: 8})
			lock := mk()
			for id := 0; id < contenders; id++ {
				m.Spawn(id, func(c *core.Ctx) {
					for i := 0; i < critSections; i++ {
						lock.Lock(c)
						c.Sleep(2 * sim.Microsecond)
						lock.Unlock(c)
						c.Sleep(1 * sim.Microsecond)
					}
				})
			}
			m.Run()
			mt := m.Metrics()
			total := mt.RowBusOps + mt.ColBusOps
			row = append(row, float64(total)/float64(contenders*critSections))
		}
		t.AddRow(row...)
	}
	return t
}
