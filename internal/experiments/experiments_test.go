package experiments

import (
	"strings"
	"testing"
)

func TestFiguresNonEmpty(t *testing.T) {
	for name, f := range map[string]interface{ Render() string }{
		"fig2":     Figure2(),
		"fig3":     Figure3(),
		"fig4":     Figure4(),
		"tradeoff": BlockTradeoff(),
		"latency":  Latency(),
	} {
		out := f.Render()
		if len(out) < 100 {
			t.Errorf("%s: short output:\n%s", name, out)
		}
	}
}

func TestOpsTableMatchesPaper(t *testing.T) {
	out := Ops().Render()
	// Spot-check the headline counts against the rendered rows.
	for _, want := range []string{"READ unmodified", "READMOD modified", "broadcast"} {
		if !strings.Contains(out, want) {
			t.Errorf("ops table missing %q:\n%s", want, out)
		}
	}
	tbl := Ops()
	if tbl.Rows() != 5 {
		t.Errorf("ops table has %d rows", tbl.Rows())
	}
}

func TestScaleTable(t *testing.T) {
	out := Scale().Render()
	if !strings.Contains(out, "1024") {
		t.Errorf("scale table missing the 1K configuration:\n%s", out)
	}
}

func TestFigure2SimShape(t *testing.T) {
	f := Figure2Sim([]int{3, 4}, 60)
	// Within each curve, higher measured rate means lower efficiency.
	for _, label := range []string{"n=3 (N=9)", "n=4 (N=16)"} {
		s := f.Series(label)
		if len(s.Points) < 3 {
			t.Fatalf("%s: only %d points", label, len(s.Points))
		}
		var xs []float64
		for x := range s.Points {
			xs = append(xs, x)
		}
		// Check the extremes: lowest-rate point beats highest-rate point.
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if s.Points[min] <= s.Points[max] {
			t.Errorf("%s: efficiency did not fall with load (%.3f@%.1f vs %.3f@%.1f)",
				label, s.Points[min], min, s.Points[max], max)
		}
	}
}

func TestMultiVsMulticubeShape(t *testing.T) {
	tbl := MultiVsMulticube(60)
	if tbl.Rows() != 4 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	out := tbl.Render()
	if !strings.Contains(out, "64") {
		t.Errorf("missing 64-processor row:\n%s", out)
	}
}

func TestSyncTableQueueWins(t *testing.T) {
	out := Sync(5).Render()
	for _, want := range []string{"test-and-set", "SYNC queue"} {
		if !strings.Contains(out, want) {
			t.Errorf("sync table missing %q:\n%s", want, out)
		}
	}
}
