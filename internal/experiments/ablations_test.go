package experiments

import (
	"strings"
	"testing"
)

func TestSnarfAblation(t *testing.T) {
	tbl := Snarf(80)
	if tbl.Rows() != 2 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Row order: false, true. The snarf run must record snarfs; the
	// baseline must record zero.
	if !strings.HasPrefix(lines[1], "false") || !strings.HasPrefix(lines[2], "true") {
		t.Fatalf("unexpected rows:\n%s", out)
	}
	if !strings.Contains(lines[1], ",0,") {
		t.Errorf("baseline recorded snarfs: %s", lines[1])
	}
}

func TestMLTSizeAblation(t *testing.T) {
	tbl := MLTSize(80)
	out := tbl.Render()
	if !strings.Contains(out, "unbounded") {
		t.Fatalf("missing unbounded row:\n%s", out)
	}
	// The smallest table must overflow; the unbounded one must not.
	csv := strings.Split(strings.TrimSpace(tbl.CSV()), "\n")
	first := strings.Split(csv[1], ",")
	last := strings.Split(csv[len(csv)-1], ",")
	if first[1] == "0" {
		t.Errorf("2-entry table never overflowed: %v", first)
	}
	if last[1] != "0" {
		t.Errorf("unbounded table overflowed: %v", last)
	}
}

func TestFalseSharingCostsMore(t *testing.T) {
	tbl := FalseSharing(40)
	csv := strings.Split(strings.TrimSpace(tbl.CSV()), "\n")
	same := strings.Split(csv[1], ",")
	separate := strings.Split(csv[2], ",")
	if atoiSafe(same[1]) <= atoiSafe(separate[1]) {
		t.Errorf("false sharing (%s ops) not costlier than separate blocks (%s ops)", same[1], separate[1])
	}
}

func TestArbitrationTable(t *testing.T) {
	tbl := Arbitration(60)
	out := tbl.Render()
	for _, want := range []string{"FIFO", "round-robin"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDimensionsRenders(t *testing.T) {
	out := Dimensions().Render()
	if !strings.Contains(out, "n=32 k=2") || !strings.Contains(out, "k=10") {
		t.Errorf("dimension sweep incomplete:\n%s", out)
	}
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestSyncScalingQueueStaysFlat(t *testing.T) {
	tbl := SyncScaling(5)
	csv := strings.Split(strings.TrimSpace(tbl.CSV()), "\n")
	// Column 3 (SYNC queue) at 2 vs 16 contenders: the queue's cost per
	// section must grow far slower than test-and-set's (column 1).
	first := strings.Split(csv[1], ",")
	last := strings.Split(csv[len(csv)-1], ",")
	tas2, tas16 := atofSafe(first[1]), atofSafe(last[1])
	q2, q16 := atofSafe(first[3]), atofSafe(last[3])
	if q16 >= tas16 {
		t.Errorf("queue (%f) not cheaper than TAS (%f) at 16 contenders", q16, tas16)
	}
	if (q16 / q2) > (tas16 / tas2) {
		t.Errorf("queue growth %f worse than TAS growth %f", q16/q2, tas16/tas2)
	}
}

func atofSafe(s string) float64 {
	var v float64
	var frac, div float64 = 0, 1
	dot := false
	for _, c := range s {
		if c == '.' {
			dot = true
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		if dot {
			div *= 10
			frac = frac*10 + float64(c-'0')
		} else {
			v = v*10 + float64(c-'0')
		}
	}
	return v + frac/div
}
