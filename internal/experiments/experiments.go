// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// returns a renderable table; cmd/multicube-bench prints them and the
// root bench_test.go wraps them as testing.B benchmarks. EXPERIMENTS.md
// records paper-versus-measured for each.
package experiments

import (
	"fmt"

	"multicube/internal/coherence"
	"multicube/internal/core"
	"multicube/internal/mva"
	"multicube/internal/sim"
	"multicube/internal/singlebus"
	"multicube/internal/stats"
	"multicube/internal/syncprim"
	"multicube/internal/topology"
	"multicube/internal/workload"
)

// Figure2 regenerates Figure 2 from the analytical model.
func Figure2() *stats.Figure { return mva.Figure2(nil) }

// Figure3 regenerates Figure 3 from the analytical model.
func Figure3() *stats.Figure { return mva.Figure3(nil) }

// Figure4 regenerates Figure 4 from the analytical model.
func Figure4() *stats.Figure { return mva.Figure4(nil) }

// BlockTradeoff regenerates Figure 4's dashed-line analysis.
func BlockTradeoff() *stats.Figure { return mva.Figure4BlockTradeoff(50) }

// Latency regenerates the Section 5 latency-reduction ablation.
func Latency() *stats.Figure { return mva.LatencyTechniques(nil) }

// Figure2Sim cross-validates Figure 2's shape with the discrete-event
// simulator: an organic shared-data workload swept over think times, on
// small grids (the full 32×32 point is reachable but slow; the shape —
// efficiency falling with load, wider machines falling faster — is what
// the cross-check establishes). Both axes are measured, not assumed.
func Figure2Sim(rows []int, requests int) *stats.Figure {
	if rows == nil {
		rows = []int{4, 8}
	}
	if requests == 0 {
		requests = 150
	}
	f := stats.NewFigure(
		"Figure 2 (simulator cross-check): measured efficiency vs measured bus rate",
		"req/ms(meas)")
	thinks := []sim.Time{100 * sim.Microsecond, 40 * sim.Microsecond, 20 * sim.Microsecond,
		10 * sim.Microsecond, 5 * sim.Microsecond}
	for _, n := range rows {
		label := fmt.Sprintf("n=%d (N=%d)", n, n*n)
		for _, think := range thinks {
			m := core.MustNew(core.Config{N: n, BlockWords: 16})
			rep := workload.Run(m, workload.GenConfig{
				Seed: 1, Think: think, Exponential: true,
				PShared: 0.95, PWrite: 0.3, SharedLines: 4 * n * n, PrivateLines: 4,
				Requests: requests,
			})
			rate := rep.BusRate(m.Processors())
			f.Add(label, roundTo(rate, 0.1), rep.Efficiency())
		}
	}
	return f
}

// Ops verifies the protocol's bus-operation counts against the paper's
// Section 3/6 claims by running single transactions on a 4×4 machine in
// controlled geometries and reading the per-transaction traces.
func Ops() *stats.Table {
	t := stats.NewTable(
		"Bus operations per transaction (paper: READ unmod ≤4, READ mod 5, READMOD mod 4, READMOD unmod broadcast n+1 row + 3 col)",
		"transaction", "geometry", "row ops", "col ops", "total", "paper")

	type step struct {
		name, geometry, paper string
		run                   func(k *sim.Kernel, s *coherence.System) coherence.TxnTrace
	}
	at := func(r, c int) topology.Coord { return topology.Coord{Row: r, Col: c} }
	do := func(k *sim.Kernel, start func(done func(coherence.Result))) coherence.TxnTrace {
		var tr coherence.TxnTrace
		start(func(r coherence.Result) { tr = r.Trace })
		k.Run()
		return tr
	}
	steps := []step{
		{
			"READ unmodified", "origin off home column", "4",
			func(k *sim.Kernel, s *coherence.System) coherence.TxnTrace {
				return do(k, func(done func(coherence.Result)) { s.Node(at(0, 0)).Read(2, done) })
			},
		},
		{
			"READ unmodified", "origin on home column", "3",
			func(k *sim.Kernel, s *coherence.System) coherence.TxnTrace {
				return do(k, func(done func(coherence.Result)) { s.Node(at(0, 2)).Read(2, done) })
			},
		},
		{
			"READ modified", "fully remote", "5",
			func(k *sim.Kernel, s *coherence.System) coherence.TxnTrace {
				do(k, func(done func(coherence.Result)) { s.Node(at(0, 0)).Write(2, done) })
				return do(k, func(done func(coherence.Result)) { s.Node(at(3, 3)).Read(2, done) })
			},
		},
		{
			"READMOD modified", "fully remote", "4",
			func(k *sim.Kernel, s *coherence.System) coherence.TxnTrace {
				do(k, func(done func(coherence.Result)) { s.Node(at(0, 0)).Write(2, done) })
				return do(k, func(done func(coherence.Result)) { s.Node(at(3, 3)).Write(2, done) })
			},
		},
		{
			"READMOD unmodified", "broadcast (n=4)", "n+1=5 row + 3 col",
			func(k *sim.Kernel, s *coherence.System) coherence.TxnTrace {
				return do(k, func(done func(coherence.Result)) { s.Node(at(0, 0)).Write(2, done) })
			},
		},
	}
	for _, st := range steps {
		k := sim.NewKernel()
		s := coherence.MustNewSystem(k, coherence.Config{N: 4, BlockWords: 4})
		tr := st.run(k, s)
		t.AddRow(st.name, st.geometry, tr.RowOps, tr.ColOps, tr.Ops(), st.paper)
	}
	return t
}

// Scale tabulates the Section 6 scalability formulas across dimensions.
func Scale() *stats.Table {
	t := stats.NewTable(
		"Multicube scaling (Section 6): buses = k*n^(k-1); bandwidth/processor = k/n; invalidation ops ~ (N-1)/(n-1)",
		"n", "k", "processors", "buses", "bw/proc", "inval ops")
	for _, cfg := range []struct{ n, k int }{
		{16, 1}, {32, 1}, // multis
		{8, 2}, {16, 2}, {24, 2}, {32, 2}, // Wisconsin points
		{2, 6}, {2, 10}, // hypercubes
		{4, 3}, {8, 3}, {10, 3}, // higher dimensions
	} {
		m := topology.MustNew(cfg.n, cfg.k)
		t.AddRow(cfg.n, cfg.k, m.Processors(), m.Buses(),
			m.BandwidthPerProcessor(), m.InvalidationBusOps())
	}
	return t
}

// MultiVsMulticube runs the same shared-data workload on the single-bus
// multi and the Multicube at growing processor counts: the multi
// saturates at tens of processors while the grid keeps scaling (the
// paper's motivating claim).
func MultiVsMulticube(requests int) *stats.Table {
	if requests == 0 {
		requests = 100
	}
	t := stats.NewTable(
		"Single-bus multi vs Wisconsin Multicube, same workload per processor",
		"processors", "multi eff", "multi bus util", "multicube eff", "multicube max row util")
	think := 20 * sim.Microsecond
	for _, n := range []int{2, 4, 6, 8} {
		procs := n * n
		cfg := workload.GenConfig{
			Seed: 3, Think: think, Exponential: true,
			PShared: 0.9, PWrite: 0.3, SharedLines: 4 * procs, PrivateLines: 4,
			Requests: requests,
		}
		sb := singlebus.MustNew(singlebus.Config{Processors: procs, BlockWords: 16})
		sbRep := workload.RunSingleBus(sb, cfg)
		sbUtil := sb.Bus().Utilization(sb.Kernel().Now())

		mc := core.MustNew(core.Config{N: n, BlockWords: 16})
		mcRep := workload.Run(mc, cfg)
		mcUtil := mc.Metrics().MaxRowUtil

		t.AddRow(procs, sbRep.Efficiency(), sbUtil, mcRep.Efficiency(), mcUtil)
	}
	return t
}

// Sync compares the three lock implementations under contention: total
// bus operations, bus operations per critical section, and makespan —
// Section 4's claim that the SYNC queue "collapses bus traffic to a very
// low level" while preserving first-come-first-served order.
func Sync(critSections int) *stats.Table {
	if critSections == 0 {
		critSections = 8
	}
	t := stats.NewTable(
		"Lock primitives under contention (9 processors, one lock)",
		"lock", "bus ops", "ops/section", "elapsed", "fallbacks")
	type mk struct {
		name string
		lock func() syncprim.Locker
	}
	makers := []mk{
		{"test-and-set", func() syncprim.Locker { return &syncprim.TASLock{Addr: 0} }},
		{"test-and-test-and-set", func() syncprim.Locker { return &syncprim.TTSLock{Addr: 0} }},
		{"SYNC queue", func() syncprim.Locker { return &syncprim.QueueLock{Addr: 0} }},
	}
	for _, mkr := range makers {
		m := core.MustNew(core.Config{N: 3, BlockWords: 8})
		lock := mkr.lock()
		m.SpawnAll(func(c *core.Ctx) {
			for i := 0; i < critSections; i++ {
				lock.Lock(c)
				c.Sleep(2 * sim.Microsecond)
				lock.Unlock(c)
				c.Sleep(1 * sim.Microsecond)
			}
		})
		elapsed := m.Run()
		mt := m.Metrics()
		total := mt.RowBusOps + mt.ColBusOps
		sections := 9 * critSections
		fallbacks := uint64(0)
		if ql, ok := lock.(*syncprim.QueueLock); ok {
			_, fallbacks = ql.Stats()
		}
		t.AddRow(mkr.name, total, float64(total)/float64(sections), elapsed, fallbacks)
	}
	return t
}

func roundTo(v, unit float64) float64 {
	return float64(int64(v/unit+0.5)) * unit
}
