package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 123456)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header = %q", lines[1])
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d", tb.Rows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.123456)
	tb.AddRow(1000.0)
	tb.AddRow(123.456)
	out := tb.CSV()
	for _, want := range []string{"0.1235", "1000", "123.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow(1, "two")
	got := tb.CSV()
	want := "a,b\n1,two\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestJSONRows(t *testing.T) {
	tb := NewTable("demo", "name", "value", "note")
	tb.AddRow("alpha", 1.5, "")
	tb.AddRow("beta", 2, "x")
	got, err := tb.JSONRows("exp")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), got)
	}
	var obj struct {
		Experiment string                 `json:"experiment"`
		Table      string                 `json:"table"`
		Columns    []string               `json:"columns"`
		Row        map[string]interface{} `json:"row"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if obj.Experiment != "exp" || obj.Table != "demo" || len(obj.Columns) != 3 {
		t.Fatalf("metadata wrong: %+v", obj)
	}
	if v, ok := obj.Row["value"].(float64); !ok || v != 1.5 {
		t.Fatalf("numeric cell not a JSON number: %#v", obj.Row["value"])
	}
	if obj.Row["name"] != "alpha" {
		t.Fatalf("string cell = %#v, want alpha", obj.Row["name"])
	}
	if obj.Row["note"] != nil {
		t.Fatalf("empty cell = %#v, want null", obj.Row["note"])
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("Figure 2", "rate")
	f.Add("n=8", 10, 0.99)
	f.Add("n=8", 20, 0.95)
	f.Add("n=32", 10, 0.90)
	f.Add("n=32", 20, 0.80)
	out := f.Render()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "n=32") {
		t.Fatalf("render:\n%s", out)
	}
	// Rows sorted by x.
	i10 := strings.Index(out, "10")
	i20 := strings.Index(out, "20")
	if i10 < 0 || i20 < 0 || i10 > i20 {
		t.Errorf("x values out of order:\n%s", out)
	}
	// Missing points render as blanks, not zeros.
	f.Add("n=8", 30, 0.5)
	tbl := f.Table()
	if tbl.Rows() != 3 {
		t.Errorf("rows = %d, want 3", tbl.Rows())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}

func TestCrossover(t *testing.T) {
	f := NewFigure("", "x")
	for x := 1.0; x <= 5; x++ {
		f.Add("a", x, 10-x) // falling
		f.Add("b", x, 2*x)  // rising
	}
	x, ok := Crossover(f.Series("a"), f.Series("b"))
	if !ok || x != 4 {
		t.Errorf("Crossover = (%g, %v), want (4, true)", x, ok)
	}
	f2 := NewFigure("", "x")
	f2.Add("a", 1, 5)
	f2.Add("b", 1, 1)
	if _, ok := Crossover(f2.Series("a"), f2.Series("b")); ok {
		t.Error("phantom crossover")
	}
}
