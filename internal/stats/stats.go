// Package stats provides the small reporting toolkit the benchmark
// harness uses: aligned text tables, CSV output, and figure series (one
// row per x value, one column per curve) matching how the paper's
// figures read.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render returns the aligned table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// JSONRows returns the table as JSON Lines: one object per data row,
// keyed by column header, with the experiment and table title attached
// so streams from several tables stay self-describing. Cells that parse
// as numbers are emitted as JSON numbers, empty cells as null, and
// everything else as strings (the schema multicube-bench -json
// documents in the README).
func (t *Table) JSONRows(experiment string) (string, error) {
	var b strings.Builder
	for _, row := range t.rows {
		cells := make(map[string]interface{}, len(row))
		for i, c := range row {
			if i >= len(t.Headers) {
				break
			}
			switch {
			case c == "":
				cells[t.Headers[i]] = nil
			default:
				if f, err := strconv.ParseFloat(c, 64); err == nil {
					cells[t.Headers[i]] = f
				} else {
					cells[t.Headers[i]] = c
				}
			}
		}
		obj := map[string]interface{}{
			"experiment": experiment,
			"table":      t.Title,
			"columns":    t.Headers,
			"row":        cells,
		}
		enc, err := json.Marshal(obj)
		if err != nil {
			return "", err
		}
		b.Write(enc)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// CSV returns the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points map[float64]float64
}

// Figure holds a family of curves over a shared x axis — the shape of the
// paper's Figures 2-4.
type Figure struct {
	Title  string
	XLabel string
	series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel}
}

// Series returns (creating if needed) the curve with the given label.
func (f *Figure) Series(label string) *Series {
	for _, s := range f.series {
		if s.Label == label {
			return s
		}
	}
	s := &Series{Label: label, Points: make(map[float64]float64)}
	f.series = append(f.series, s)
	return s
}

// Add records one point on the labeled curve.
func (f *Figure) Add(label string, x, y float64) {
	f.Series(label).Points[x] = y
}

// Table renders the figure as a table: one row per x, one column per
// curve, in insertion order.
func (f *Figure) Table() *Table {
	headers := []string{f.XLabel}
	for _, s := range f.series {
		headers = append(headers, s.Label)
	}
	t := NewTable(f.Title, headers...)
	xsSet := map[float64]bool{}
	for _, s := range f.series {
		for x := range s.Points {
			xsSet[x] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		cells := []interface{}{x}
		for _, s := range f.series {
			if y, ok := s.Points[x]; ok {
				cells = append(cells, y)
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Render renders the figure's table.
func (f *Figure) Render() string { return f.Table().Render() }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Crossover returns the first x at which series a falls below series b,
// scanning their shared x values in ascending order; ok is false when
// they never cross.
func Crossover(a, b *Series) (x float64, ok bool) {
	var xs []float64
	for v := range a.Points {
		if _, shared := b.Points[v]; shared {
			xs = append(xs, v)
		}
	}
	sort.Float64s(xs)
	for _, v := range xs {
		if a.Points[v] < b.Points[v] {
			return v, true
		}
	}
	return 0, false
}
